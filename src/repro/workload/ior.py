"""A functional IOR driver.

Executes an application's writes against the BeeGFS data plane — for
real (bytes through the striping layer into chunk stores) or size-only.
This is the *correctness* path: it verifies that the workload geometry,
striping and chunk storage agree (what lands on each target, whether a
read-back returns what was written).  Timing comes from the engines in
:mod:`repro.engine`, which consume the same applications.

The report mirrors the fields IOR prints after a write phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..beegfs.client import BeeGFSClient
from ..beegfs.filesystem import BeeGFS
from ..errors import WorkloadError
from ..units import bytes_to_mib
from .application import Application

__all__ = ["IORDriver", "IORReport"]


@dataclass(frozen=True)
class IORReport:
    """Summary of one functional IOR execution."""

    app_id: str
    nprocs: int
    total_bytes: int
    files: tuple[str, ...]
    bytes_per_target: dict[int, int]

    @property
    def total_mib(self) -> float:
        return bytes_to_mib(self.total_bytes)

    def placement(self, fs: BeeGFS) -> dict[str, int]:
        """Bytes per storage server for this run."""
        out: dict[str, int] = {}
        for tid, nbytes in self.bytes_per_target.items():
            server = fs.management.server_of(tid)
            out[server] = out.get(server, 0) + nbytes
        return out


class IORDriver:
    """Run IOR workloads against a BeeGFS instance."""

    def __init__(self, fs: BeeGFS, verify: bool = False, fill_byte: bytes = b"\xa5"):
        """``verify`` reads every region back and checks its contents
        (requires a data-keeping deployment)."""
        self.fs = fs
        self.verify = verify
        self.fill_byte = fill_byte

    def run_write_phase(self, app: Application, rng: np.random.Generator | None = None) -> IORReport:
        """Execute the write phase of ``app`` and return the report.

        Files are created through the normal path (so the directory's
        stripe configuration and chooser apply); ranks then write their
        regions in rank order — ordering does not matter functionally.
        """
        client = BeeGFSClient(self.fs)
        if not self.fs.namespace.is_dir(app.directory):
            client.mkdir(app.directory)

        keep_data = self.fs.spec.keep_data
        handles = {}
        for path in app.file_paths():
            if client.exists(path):
                raise WorkloadError(f"{app.app_id}: output file {path!r} already exists")
        if app.config.pattern.shared_file:
            handles[None] = client.create(app.file_path())
        else:
            for rank in range(app.nprocs):
                handles[rank] = client.create(app.file_path(rank))

        bytes_per_target: dict[int, int] = {}
        for rank in range(app.nprocs):
            handle = handles[None] if None in handles else handles[rank]
            for region in app.config.regions(rank, app.nprocs):
                data = self.fill_byte * region.length if keep_data else None
                handle.pwrite(region.offset, data, region.length)
                for tid, n in handle.inode.pattern.bytes_per_target(
                    region.length, region.offset
                ).items():
                    if n:
                        bytes_per_target[tid] = bytes_per_target.get(tid, 0) + n
                if self.verify:
                    if not keep_data:
                        raise WorkloadError("verify requires a data-keeping deployment")
                    back = handle.pread(region.offset, region.length)
                    if back != data:
                        raise WorkloadError(
                            f"{app.app_id}: verification failed at rank {rank}, "
                            f"offset {region.offset}"
                        )
        for handle in handles.values():
            handle.close()

        return IORReport(
            app_id=app.app_id,
            nprocs=app.nprocs,
            total_bytes=app.total_bytes,
            files=tuple(app.file_paths()),
            bytes_per_target=bytes_per_target,
        )

    def run_read_phase(self, app: Application) -> IORReport:
        """Execute the read phase of ``app`` against existing files.

        The files must have been written (e.g. by :meth:`run_write_phase`
        of a matching application).  With ``verify`` and a data-keeping
        deployment, contents are checked against the fill byte.
        """
        client = BeeGFSClient(self.fs)
        bytes_per_target: dict[int, int] = {}
        handles = {}
        if app.config.pattern.shared_file:
            handles[None] = client.open(app.file_path())
        else:
            for rank in range(app.nprocs):
                handles[rank] = client.open(app.file_path(rank))
        keep_data = self.fs.spec.keep_data
        for rank in range(app.nprocs):
            handle = handles[None] if None in handles else handles[rank]
            for region in app.config.regions(rank, app.nprocs):
                if keep_data:
                    data = handle.pread(region.offset, region.length)
                    if self.verify and data != self.fill_byte * region.length:
                        raise WorkloadError(
                            f"{app.app_id}: read verification failed at rank {rank}, "
                            f"offset {region.offset}"
                        )
                for tid, n in handle.inode.pattern.bytes_per_target(
                    region.length, region.offset
                ).items():
                    if n:
                        bytes_per_target[tid] = bytes_per_target.get(tid, 0) + n
        for handle in handles.values():
            handle.close()
        return IORReport(
            app_id=app.app_id,
            nprocs=app.nprocs,
            total_bytes=app.total_bytes,
            files=tuple(app.file_paths()),
            bytes_per_target=bytes_per_target,
        )
