"""Tracked performance benchmarks of the simulation hot paths.

``beegfs-repro bench`` times the layers the campaign cost is made of —
the max-min solver, one fluid-engine run, per-tier cache-hit replay
(hot vs disk), and a full protocol campaign (serial and parallel) —
and writes a ``BENCH_<rev>.json``
report next to the committed baseline, so performance regressions are
caught the same way correctness regressions are.

Reports are machine-portable *by normalization*: every report carries
``norm_s``, the wall time of a fixed pure-numpy kernel on the machine
that produced it.  :func:`compare` rescales the current numbers by the
ratio of the two norms before applying the regression threshold, so a
slower CI runner does not read as a slower simulator.  Dimensionless
metrics (speedup, batch size) are pure ratios and are never rescaled.
Parallel-campaign metrics additionally depend on the core count *and*
on the campaign length (worker spawn amortization, chunk sizing); they
are compared only when both reports saw the same ``cpu_count`` and the
same ``quick`` mode (a single-core container can prove the parallel
runner *correct*, never *fast*).

Timing protocol: each metric is the best of several batches (median-free
min), because the minimum over batches is the statistic least sensitive
to the scheduling noise of shared machines.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from .errors import ReproError

__all__ = ["collect", "write_report", "render", "compare", "BENCH_SCHEMA"]

BENCH_SCHEMA = 1

# Benchmark workload: the paper-scale configuration (32 nodes x 8 ppn,
# stripe 8) whose campaigns dominate reproduction wall clock.
_BENCH_FACTORS = {"num_nodes": 32, "ppn": 8, "stripe_count": 8}


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).parent,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def measure_norm(batches: int = 5) -> float:
    """Wall time of a fixed pure-numpy kernel (machine-speed yardstick).

    The kernel mimics the solver's working set (boolean incidence mask,
    float reductions over a 256x60 matrix) without touching any repro
    code, so it moves with the machine, never with the simulator.
    """
    rng = np.random.default_rng(12345)
    incidence = rng.random((256, 60)) < 0.12
    caps = rng.uniform(500.0, 12000.0, 60)
    best = float("inf")
    for _ in range(batches):
        start = time.perf_counter()
        acc = 0.0
        for _ in range(200):
            users = incidence.sum(axis=0)
            mask = users > 0
            headroom = np.where(mask, caps / np.maximum(users, 1), np.inf)
            acc += float(headroom.min()) + float(incidence[:, mask].sum())
        best = min(best, time.perf_counter() - start)
    if acc == 0.0:  # keeps the accumulator (and the kernel) alive
        raise ReproError("norm kernel degenerated")
    return best


def _best_of(fn: Callable[[], float], batches: int) -> float:
    return min(fn() for _ in range(batches))


def _metric(
    value: float,
    unit: str,
    direction: str,
    parallel: bool = False,
    dimensionless: bool = False,
) -> dict[str, Any]:
    out = {
        "value": float(value),
        "unit": unit,
        "direction": direction,  # "lower" | "higher" is better
        "parallel": parallel,
    }
    if dimensionless:
        # A pure ratio (speedup, runs per batch): machine speed already
        # divides out, so compare() must not norm-rescale it.
        out["dimensionless"] = True
    return out


# -- layer benches -------------------------------------------------------------


def _solver_problem() -> tuple[list[list[int]], np.ndarray]:
    rng = np.random.default_rng(0)
    nflows, nres = 256, 60
    memberships = [
        sorted(int(r) for r in rng.choice(nres, size=7, replace=False))
        for _ in range(nflows)
    ]
    return memberships, rng.uniform(500.0, 12000.0, nres)


def bench_solver(quick: bool = False) -> dict[str, dict[str, Any]]:
    """Max-min solver: one-shot, persistent-incidence, and cache-hit paths.

    Sub-second even at full fidelity, so ``quick`` does not reduce it —
    quick and full reports stay comparable on the solver metrics.
    """
    from .netsim.maxmin import MaxMinSolver, max_min_rates

    memberships, capacities = _solver_problem()
    calls = 100
    batches = 4

    def one_shot() -> float:
        start = time.perf_counter()
        for _ in range(calls):
            max_min_rates(memberships, capacities)
        return (time.perf_counter() - start) / calls

    solver = MaxMinSolver(memberships, capacities.shape[0])
    varied = [capacities * (1.0 + 0.001 * i) for i in range(calls)]

    def persistent() -> float:
        solver.clear_cache()
        start = time.perf_counter()
        for caps in varied:
            solver.solve(caps)
        return (time.perf_counter() - start) / calls

    solver.solve(capacities)

    def cache_hit() -> float:
        start = time.perf_counter()
        for _ in range(calls):
            solver.solve(capacities)
        return (time.perf_counter() - start) / calls

    return {
        "solver.one_shot_us": _metric(_best_of(one_shot, batches) * 1e6, "us/call", "lower"),
        "solver.persistent_us": _metric(_best_of(persistent, batches) * 1e6, "us/call", "lower"),
        "solver.cache_hit_us": _metric(_best_of(cache_hit, batches) * 1e6, "us/call", "lower"),
    }


def bench_fluid(quick: bool = False) -> dict[str, dict[str, Any]]:
    """One paper-scale fluid-engine run: ms/run and segment throughput.

    Like :func:`bench_solver`, cheap enough to run at full fidelity in
    quick mode.
    """
    from .experiments.common import StandardExecutor
    from .methodology.plan import ExperimentSpec
    from .telemetry.bus import session

    spec = ExperimentSpec(exp_id="bench", scenario="scenario1", factors=_BENCH_FACTORS)
    executor = StandardExecutor(seed=7)
    executor(spec, 0)  # warm engine + caches out of the timed region
    runs = 12
    batches = 3

    with session(ring=4) as bus:
        executor(spec, 1)
        segments_per_run = bus.metrics.counter("engine.segments_solved", engine="fluid").value

    def timed() -> float:
        start = time.perf_counter()
        for rep in range(runs):
            executor(spec, rep + 2)
        return (time.perf_counter() - start) / runs

    per_run = _best_of(timed, batches)
    return {
        "fluid.run_ms": _metric(per_run * 1e3, "ms/run", "lower"),
        "fluid.runs_per_s": _metric(1.0 / per_run, "runs/s", "higher"),
        "fluid.segments_per_s": _metric(
            segments_per_run / per_run, "segments/s", "higher"
        ),
    }


def _campaign_specs() -> list[Any]:
    from .methodology.plan import ExperimentSpec

    return [
        ExperimentSpec(
            exp_id="bench",
            scenario="scenario1",
            factors={**_BENCH_FACTORS, "stripe_count": s},
        )
        for s in (4, 8)
    ]


def bench_campaign(
    quick: bool = False,
    workers: int = 4,
    transfer_out: dict[str, Any] | None = None,
) -> dict[str, dict[str, Any]]:
    """A reduced protocol campaign, serial and at ``workers`` processes.

    The only stage ``quick`` shortens (5 reps instead of 25): campaign
    metrics are rates, so they stay comparable across rep counts.  The
    result cache is disabled: the bench times execution, not replay.

    The parallel leg also reports dispatch economics — mean batch size
    and parent-side dispatch overhead per run — and, via
    ``transfer_out``, the raw spool-transfer counters (batches, jobs,
    frames, bytes) for the CI artifact.
    """
    from .experiments.common import run_specs

    specs = _campaign_specs()
    reps = 5 if quick else 25
    total = reps * len(specs)

    start = time.perf_counter()
    store = run_specs(specs, repetitions=reps, seed=7, cache=False)
    serial_s = time.perf_counter() - start
    if len(store) != total:
        raise ReproError(f"campaign bench expected {total} records, got {len(store)}")

    out = {
        "campaign.serial_runs_per_s": _metric(total / serial_s, "runs/s", "higher"),
    }
    if workers > 1:
        stats: dict[str, Any] = {}
        start = time.perf_counter()
        pstore = run_specs(
            specs, repetitions=reps, seed=7, workers=workers, cache=False,
            stats_out=stats,
        )
        parallel_s = time.perf_counter() - start
        if len(pstore) != total:
            raise ReproError(
                f"parallel campaign bench expected {total} records, got {len(pstore)}"
            )
        out[f"campaign.parallel_{workers}w_runs_per_s"] = _metric(
            total / parallel_s, "runs/s", "higher", parallel=True
        )
        out[f"campaign.speedup_{workers}w"] = _metric(
            serial_s / parallel_s, "x", "higher", parallel=True, dimensionless=True
        )
        transfer = stats.get("transfer") or {}
        jobs = float(transfer.get("jobs", 0) or 0)
        batches = float(transfer.get("batches", 0) or 0)
        if jobs and batches:
            out["campaign.dispatch_overhead_us"] = _metric(
                transfer["dispatch_overhead_s"] / jobs * 1e6,
                "us/run",
                "lower",
                parallel=True,
            )
            out["campaign.batch_size"] = _metric(
                jobs / batches, "runs/batch", "higher", parallel=True, dimensionless=True
            )
        if transfer_out is not None and transfer:
            transfer_out.update(transfer)
    return out


def bench_cache(quick: bool = False) -> dict[str, dict[str, Any]]:
    """Cache-hit latency per tier: hot (memory) vs disk.

    One run populates a throwaway cache; hot hits then replay from the
    in-process LRU, and disk hits are forced by dropping the hot tier
    before each lookup.  Both legs time the full ``service.run`` hit
    path (replayed events included), so the gap is exactly what tiering
    buys a warm campaign.  Cheap enough to run at full fidelity in
    quick mode.
    """
    import tempfile as _tempfile

    from .scenario.compile import compile_scenario
    from .methodology.plan import ExperimentSpec
    from .service import get_service

    spec = ExperimentSpec(exp_id="bench", scenario="scenario1", factors=_BENCH_FACTORS)
    scenario = compile_scenario(spec, seed=7)
    svc = get_service()
    hits = 10
    batches = 3
    with _tempfile.TemporaryDirectory(prefix="bench-cache-") as tmp:
        svc.run(scenario, 0, cache=True, cache_dir=tmp)  # populate, cold
        svc.run(scenario, 0, cache=True, cache_dir=tmp)  # warm the hot tier

        def timed_hot() -> float:
            start = time.perf_counter()
            for _ in range(hits):
                svc.run(scenario, 0, cache=True, cache_dir=tmp)
            return (time.perf_counter() - start) / hits

        def timed_disk() -> float:
            elapsed = 0.0
            for _ in range(hits):
                svc.drop_memory_tiers(tmp)
                start = time.perf_counter()
                svc.run(scenario, 0, cache=True, cache_dir=tmp)
                elapsed += time.perf_counter() - start
            return elapsed / hits

        hot = _best_of(timed_hot, batches)
        disk = _best_of(timed_disk, batches)
        svc.drop_memory_tiers(tmp)
    return {
        "cache.hot_hit_us": _metric(hot * 1e6, "us/hit", "lower"),
        "cache.disk_hit_us": _metric(disk * 1e6, "us/hit", "lower"),
    }


# -- report --------------------------------------------------------------------


def collect(quick: bool = False, workers: int = 4) -> dict[str, Any]:
    """Run every bench layer and assemble the report."""
    metrics: dict[str, dict[str, Any]] = {}
    transfer: dict[str, Any] = {}
    metrics.update(bench_solver(quick))
    metrics.update(bench_fluid(quick))
    metrics.update(bench_cache(quick))
    metrics.update(bench_campaign(quick, workers=workers, transfer_out=transfer))
    report = {
        "schema": BENCH_SCHEMA,
        "rev": _git_rev(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count() or 1,
        "quick": bool(quick),
        "norm_s": measure_norm(),
        "metrics": metrics,
    }
    if transfer:
        # Raw spool-transfer counters from the parallel campaign leg:
        # not gated (they are shape, not speed), but archived by CI so
        # dispatch economics stay inspectable across revisions.
        report["transfer"] = transfer
    return report


def write_report(report: dict[str, Any], out_dir: str | Path = "benchmarks") -> Path:
    out = Path(out_dir) / f"BENCH_{report['rev']}.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    return out


def render(report: dict[str, Any]) -> str:
    lines = [
        f"bench @ {report['rev']} — python {report['python']}, numpy {report['numpy']}, "
        f"{report['cpu_count']} cpu(s), norm {report['norm_s'] * 1e3:.1f}ms",
        f"  {'metric':<36s} {'value':>12s}  unit",
    ]
    for name, m in sorted(report["metrics"].items()):
        lines.append(f"  {name:<36s} {m['value']:>12.2f}  {m['unit']}")
    return "\n".join(lines)


def load_report(path: str | Path) -> dict[str, Any]:
    try:
        report = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read bench report {path}: {exc}") from exc
    if report.get("schema") != BENCH_SCHEMA:
        raise ReproError(
            f"bench report {path} has schema {report.get('schema')!r}, "
            f"expected {BENCH_SCHEMA}"
        )
    return report


def compare(
    current: dict[str, Any],
    baseline: dict[str, Any],
    threshold: float = 0.30,
) -> tuple[list[str], list[str]]:
    """Compare two reports; returns (regressions, detail lines).

    Current values are rescaled by the norm ratio before the threshold
    is applied, so machine speed divides out — except dimensionless
    ratios (speedup, batch size), which are compared as-is.  Parallel
    metrics are skipped unless both reports ran with the same
    ``cpu_count`` *and* the same ``quick`` mode (campaign length changes
    spawn amortization and chunk shape); metrics absent from either
    report are skipped with a note.
    """
    if threshold < 0:
        raise ReproError("regression threshold must be non-negative")
    scale = baseline["norm_s"] / current["norm_s"]
    cur_cpus = current.get("cpu_count")
    base_cpus = baseline.get("cpu_count")
    same_cpus = cur_cpus == base_cpus
    regressions: list[str] = []
    skipped = 0
    lines: list[str] = [
        f"baseline {baseline['rev']} (norm {baseline['norm_s'] * 1e3:.1f}ms) vs "
        f"current {current['rev']} (norm {current['norm_s'] * 1e3:.1f}ms), "
        f"threshold {threshold:.0%}"
    ]
    for name, base in sorted(baseline["metrics"].items()):
        cur = current["metrics"].get(name)
        if cur is None:
            skipped += 1
            lines.append(f"  {name:<36s} skipped (absent from current report)")
            continue
        if base.get("parallel") and not same_cpus:
            # Say *which* counts disagree: a silent skip here once hid a
            # parallel regression behind a runner-shape change.
            skipped += 1
            lines.append(
                f"  {name:<36s} skipped (cpu_count {cur_cpus} vs {base_cpus})"
            )
            continue
        if base.get("parallel") and current.get("quick") != baseline.get("quick"):
            # A 10-run quick campaign is spawn-dominated and chunks to
            # size 1; its dispatch shape is incomparable to a full run.
            skipped += 1
            lines.append(
                f"  {name:<36s} skipped (quick {current.get('quick')} "
                f"vs {baseline.get('quick')})"
            )
            continue
        # A "lower is better" time shrinks on a faster machine; divide
        # the machine advantage back out.  Rates are the reciprocal case.
        # Dimensionless ratios already divide machine speed out.
        direction = base["direction"]
        if base.get("dimensionless"):
            adjusted = cur["value"]
        else:
            adjusted = cur["value"] * scale if direction == "lower" else cur["value"] / scale
        if direction == "lower":
            ratio = adjusted / base["value"]
            regressed = adjusted > base["value"] * (1.0 + threshold)
        else:
            ratio = base["value"] / adjusted if adjusted else float("inf")
            regressed = adjusted < base["value"] * (1.0 - threshold)
        verdict = "REGRESSED" if regressed else "ok"
        lines.append(
            f"  {name:<36s} {base['value']:>10.2f} -> {adjusted:>10.2f} {base['unit']:<10s} "
            f"({ratio - 1.0:+.1%}) {verdict}"
        )
        if regressed:
            regressions.append(
                f"{name}: {adjusted:.2f} {base['unit']} vs baseline "
                f"{base['value']:.2f} (norm-adjusted, >{threshold:.0%} worse)"
            )
    lines.append(
        f"  {len(regressions)} regression(s), {skipped} metric(s) skipped"
    )
    return regressions, lines
