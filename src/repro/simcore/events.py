"""Event primitives for the DES kernel.

Two concepts live here:

* :class:`ScheduledCallback` — an entry of the simulator's time-ordered
  queue (a callable to run at an absolute virtual time).
* :class:`Event` — a one-shot synchronisation object processes can wait
  on; it carries a value or an exception once triggered.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator

from ..errors import SimulationError

__all__ = ["ScheduledCallback", "EventQueue", "Event"]


class ScheduledCallback:
    """A callback scheduled at an absolute simulation time.

    ``priority`` orders callbacks scheduled at the same instant (lower runs
    first); ``seq`` breaks remaining ties FIFO, making execution order
    fully deterministic.
    """

    __slots__ = ("time", "priority", "seq", "fn", "cancelled")

    def __init__(self, time: float, priority: int, seq: int, fn: Callable[[], None]):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the callback as cancelled; the queue will skip it."""
        self.cancelled = True

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "ScheduledCallback") -> bool:
        return self.sort_key() < other.sort_key()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<ScheduledCallback t={self.time:.6g} prio={self.priority}{state}>"


class EventQueue:
    """A deterministic priority queue of :class:`ScheduledCallback`.

    Cancelled entries are dropped lazily on pop, which keeps ``cancel`` O(1).
    """

    def __init__(self) -> None:
        self._heap: list[ScheduledCallback] = []
        self._seq = 0

    def __len__(self) -> int:
        return sum(1 for cb in self._heap if not cb.cancelled)

    def __bool__(self) -> bool:
        return any(not cb.cancelled for cb in self._heap)

    def push(self, time: float, fn: Callable[[], None], priority: int = 0) -> ScheduledCallback:
        """Schedule ``fn`` at absolute time ``time`` and return the handle."""
        cb = ScheduledCallback(time, priority, self._seq, fn)
        self._seq += 1
        heapq.heappush(self._heap, cb)
        return cb

    def peek_time(self) -> float | None:
        """Time of the next live callback, or ``None`` if empty."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    def pop(self) -> ScheduledCallback:
        """Remove and return the next live callback."""
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        return heapq.heappop(self._heap)

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)

    def __iter__(self) -> Iterator[ScheduledCallback]:  # pragma: no cover
        return (cb for cb in sorted(self._heap) if not cb.cancelled)


class Event:
    """A one-shot event that processes can wait on.

    An event is *triggered* at most once, either with :meth:`succeed`
    (carrying an optional value) or :meth:`fail` (carrying an exception
    that is re-raised inside every waiting process).
    """

    __slots__ = ("_callbacks", "_triggered", "_value", "_exception", "name")

    def __init__(self, name: str = ""):
        self.name = name
        self._callbacks: list[Callable[[Event], None]] = []
        self._triggered = False
        self._value: Any = None
        self._exception: BaseException | None = None

    @property
    def triggered(self) -> bool:
        return self._triggered

    @property
    def ok(self) -> bool:
        """True once the event succeeded."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> Any:
        if not self._triggered:
            raise SimulationError(f"value of untriggered event {self.name!r}")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> BaseException | None:
        return self._exception

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when triggered (immediately if already done)."""
        if self._triggered:
            fn(self)
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully."""
        self._trigger(value, None)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._trigger(None, exception)
        return self

    def _trigger(self, value: Any, exception: BaseException | None) -> None:
        if self._triggered:
            raise SimulationError(f"event {self.name!r} triggered twice")
        self._triggered = True
        self._value = value
        self._exception = exception
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self._triggered else "pending"
        return f"<Event {self.name!r} {state}>"
