"""Telemetry for simulations: traces, time series and probes.

These are used by the engines to record per-server bandwidth timelines
(the data behind the paper's Figure 9) and by tests to assert on internal
behaviour without reaching into private state.

.. deprecated::
    :class:`Trace` and :class:`Probe` are now thin wrappers over the
    structured event bus of :mod:`repro.telemetry` — every record is
    also published as a debug-level ``trace.record`` event, so there is
    exactly one trace mechanism.  New code should emit through
    :func:`repro.telemetry.get_bus` directly; these classes stay for
    compatibility (and for :class:`TimeSeries`, which remains the
    integration-friendly in-memory representation).
"""

from __future__ import annotations

import bisect
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from ..telemetry.bus import get_bus

__all__ = ["Trace", "TimeSeries", "Probe"]


def _warn_deprecated(name: str) -> None:
    warnings.warn(
        f"simcore.monitor.{name} is deprecated: emit through "
        "repro.telemetry.get_bus() instead (records already appear as "
        "debug-level 'trace.record' events)",
        DeprecationWarning,
        stacklevel=3,
    )


def _json_value(value: Any) -> Any:
    """Coerce a trace value to something the JSONL schema accepts."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return str(value)


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: ``(time, key, value)``."""

    time: float
    key: str
    value: Any


class Trace:
    """An append-only log of keyed records ordered by time.

    .. deprecated:: see the module docstring — records are mirrored to
       the event bus as debug-level ``trace.record`` events.
    """

    def __init__(self) -> None:
        _warn_deprecated("Trace")
        self._records: list[TraceRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def record(self, time: float, key: str, value: Any) -> None:
        if self._records and time < self._records[-1].time - 1e-12:
            raise ValueError("trace records must be appended in time order")
        self._records.append(TraceRecord(time, key, value))
        bus = get_bus()
        if bus.debug:
            bus.emit("trace.record", t=time, key=key, value=_json_value(value))

    def select(self, key: str) -> list[TraceRecord]:
        """All records with the given key, in time order."""
        return [r for r in self._records if r.key == key]

    def keys(self) -> set[str]:
        return {r.key for r in self._records}

    def series(self, key: str) -> "TimeSeries":
        """Extract a :class:`TimeSeries` of the numeric values under ``key``."""
        recs = self.select(key)
        return TimeSeries([r.time for r in recs], [float(r.value) for r in recs])


class TimeSeries:
    """A piecewise-constant time series (left-continuous step function).

    ``value_at(t)`` returns the value set at the latest time ``<= t``.
    Integration treats the series as constant between samples, which is
    exactly the semantics of the fluid engine's per-segment rates.
    """

    def __init__(self, times: Iterable[float] = (), values: Iterable[float] = ()):
        self.times: list[float] = list(times)
        self.values: list[float] = list(values)
        if len(self.times) != len(self.values):
            raise ValueError("times and values must have equal length")
        if any(b < a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("times must be non-decreasing")

    def __len__(self) -> int:
        return len(self.times)

    def append(self, time: float, value: float) -> None:
        if self.times and time < self.times[-1] - 1e-12:
            raise ValueError("appending out of order")
        self.times.append(time)
        self.values.append(value)

    def value_at(self, t: float) -> float:
        """Value of the step function at time ``t`` (0.0 before first sample)."""
        idx = bisect.bisect_right(self.times, t) - 1
        return self.values[idx] if idx >= 0 else 0.0

    def integrate(self, t0: float, t1: float) -> float:
        """Integral of the step function over ``[t0, t1]``."""
        if t1 < t0:
            raise ValueError("t1 < t0")
        if not self.times or t1 <= self.times[0]:
            return 0.0
        total = 0.0
        boundaries = [t0] + [t for t in self.times if t0 < t < t1] + [t1]
        for a, b in zip(boundaries, boundaries[1:]):
            total += self.value_at(a) * (b - a)
        return total

    def mean(self, t0: float, t1: float) -> float:
        """Time-average over ``[t0, t1]``."""
        if t1 == t0:
            return self.value_at(t0)
        return self.integrate(t0, t1) / (t1 - t0)

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times, dtype=float), np.asarray(self.values, dtype=float)


@dataclass
class Probe:
    """A named sampling hook: call :meth:`sample` to record ``fn()``.

    .. deprecated:: see the module docstring — samples are mirrored to
       the event bus as debug-level ``trace.record`` events under the
       key ``probe:<name>``.
    """

    name: str
    fn: Callable[[], float]
    series: TimeSeries = field(default_factory=TimeSeries)

    def __post_init__(self) -> None:
        _warn_deprecated("Probe")

    def sample(self, time: float) -> float:
        value = float(self.fn())
        self.series.append(time, value)
        bus = get_bus()
        if bus.debug:
            bus.emit("trace.record", t=time, key=f"probe:{self.name}", value=value)
        return value
