"""A small discrete-event simulation (DES) kernel.

This is the substrate under the request-level BeeGFS engine
(:mod:`repro.engine.des_runner`).  It follows the classic
process-interaction style (a la SimPy): simulation processes are Python
generators that ``yield`` waitables — :class:`Timeout`, :class:`Event`,
resource requests — and the :class:`Simulator` advances virtual time by
draining a priority queue of scheduled callbacks.

The kernel is deliberately self-contained (no dependency on the rest of
the library) and fully deterministic: ties in time are broken by a
monotonically increasing sequence number.
"""

from .events import Event, EventQueue, ScheduledCallback
from .kernel import Process, Simulator, Timeout
from .monitor import Probe, TimeSeries, Trace
from .resources import Container, Resource, Store

__all__ = [
    "Event",
    "EventQueue",
    "ScheduledCallback",
    "Simulator",
    "Process",
    "Timeout",
    "Resource",
    "Container",
    "Store",
    "Trace",
    "TimeSeries",
    "Probe",
]
