"""The simulation kernel: virtual clock, scheduler and processes.

A *process* is a Python generator that yields waitables:

* ``Timeout(delay)`` — resume after ``delay`` units of virtual time;
* :class:`~repro.simcore.events.Event` — resume when triggered (the
  ``yield`` expression evaluates to the event's value);
* another :class:`Process` — resume when that process terminates (its
  return value is delivered);
* a list/tuple of events — resume when *all* have triggered.

Exceptions travel: if a waited-on event fails, the exception is thrown
into the waiting generator at the ``yield`` site.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Generator

from ..errors import DeadlockError, InvariantViolation, SimulationError
from ..telemetry.profiling import get_profiler
from .events import Event, EventQueue, ScheduledCallback

__all__ = ["Timeout", "Process", "Simulator"]

ProcessGenerator = Generator[Any, Any, Any]


class Timeout:
    """A relative delay a process can yield on."""

    __slots__ = ("delay", "value")

    def __init__(self, delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout: {delay}")
        self.delay = delay
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay!r})"


class Process(Event):
    """A running simulation process.

    A process *is* an event: it triggers (with the generator's return
    value) when the generator is exhausted, so processes can wait on each
    other directly.
    """

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = ""):
        super().__init__(name=name or getattr(generator, "__name__", "process"))
        if not hasattr(generator, "send"):
            raise TypeError(f"process body must be a generator, got {generator!r}")
        self._sim = sim
        self._generator = generator
        # Kick off at the current time, after already-scheduled events.
        sim._schedule(0.0, lambda: self._resume(None, None), priority=1)

    @property
    def alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: BaseException | None = None) -> None:
        """Throw an exception into the process at its current yield point."""
        if self.triggered:
            raise SimulationError(f"interrupting finished process {self.name!r}")
        exc = cause if cause is not None else SimulationError("interrupted")
        self._sim._schedule(0.0, lambda: self._resume(None, exc), priority=0)

    # -- internal machinery -------------------------------------------------

    def _resume(self, value: Any, exc: BaseException | None) -> None:
        if self.triggered:  # interrupted after completion already queued
            return
        try:
            if exc is not None:
                target = self._generator.throw(exc)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:
            self.fail(err)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        sim = self._sim
        if isinstance(target, Timeout):
            sim._schedule(target.delay, lambda: self._resume(target.value, None))
        elif isinstance(target, Event):
            target.add_callback(self._on_event)
        elif isinstance(target, (list, tuple)):
            self._wait_all(list(target))
        else:
            exc = SimulationError(f"process {self.name!r} yielded non-waitable {target!r}")
            sim._schedule(0.0, lambda: self._resume(None, exc))

    def _on_event(self, event: Event) -> None:
        if event.exception is not None:
            self._resume(None, event.exception)
        else:
            self._resume(event._value, None)

    def _wait_all(self, events: list[Any]) -> None:
        pending = [ev for ev in events if isinstance(ev, Event) and not ev.triggered]
        bad = [ev for ev in events if not isinstance(ev, Event)]
        if bad:
            exc = SimulationError(f"process {self.name!r} yielded non-event in all-of: {bad[0]!r}")
            self._sim._schedule(0.0, lambda: self._resume(None, exc))
            return
        failed = next((ev for ev in events if ev.triggered and ev.exception is not None), None)
        if failed is not None:
            self._resume(None, failed.exception)
            return
        if not pending:
            self._resume([ev._value for ev in events], None)
            return
        remaining = {"n": len(pending)}

        def one_done(ev: Event) -> None:
            if self.triggered:
                return
            if ev.exception is not None:
                self._resume(None, ev.exception)
                return
            remaining["n"] -= 1
            if remaining["n"] == 0:
                self._resume([e._value for e in events], None)

        for ev in pending:
            ev.add_callback(one_done)


class Simulator:
    """Virtual clock plus deterministic event loop."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self.processes: list[Process] = []

    @property
    def now(self) -> float:
        """Current virtual time (seconds by library convention)."""
        return self._now

    # -- scheduling ---------------------------------------------------------

    def _schedule(self, delay: float, fn: Callable[[], None], priority: int = 0) -> ScheduledCallback:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self._now + delay, fn, priority)

    def schedule(self, delay: float, fn: Callable[[], None]) -> ScheduledCallback:
        """Run a plain callback after ``delay`` virtual seconds."""
        return self._schedule(delay, fn)

    def event(self, name: str = "") -> Event:
        """Create a fresh one-shot event bound to this simulator."""
        return Event(name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` (sugar matching SimPy's API)."""
        return Timeout(delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a new process from a generator and return its handle."""
        proc = Process(self, generator, name=name)
        self.processes.append(proc)
        return proc

    # -- execution ----------------------------------------------------------

    def step(self) -> None:
        """Execute the single next callback, advancing the clock."""
        cb = self._queue.pop()
        if cb.time < self._now:
            # Monotone event time is a hard kernel invariant: raising the
            # dedicated violation type lets paranoid campaigns quarantine
            # the run (still a SimulationError for legacy callers).
            raise InvariantViolation(
                f"event queue went backwards in time: {cb.time} < {self._now}"
            )
        self._now = cb.time
        cb.fn()

    def run(self, until: float | None = None) -> float:
        """Drain the event queue; optionally stop at virtual time ``until``.

        Returns the final virtual time.  Raises :class:`DeadlockError` if
        the queue empties while processes are still alive (a process waits
        on an event nobody will trigger).
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        prof = get_profiler()
        profiled = prof.enabled
        run_t0 = perf_counter() if profiled else 0.0
        steps = 0
        try:
            while True:
                next_time = self._queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                self.step()
                steps += 1
        finally:
            self._running = False
            if profiled:
                prof.record("kernel.run", perf_counter() - run_t0)
                prof.count("kernel.step", steps)
        if until is None:
            stuck = [p.name for p in self.processes if p.alive]
            if stuck:
                raise DeadlockError(f"simulation deadlocked; waiting processes: {stuck}")
        return self._now

    def run_process(self, generator: ProcessGenerator, name: str = "") -> Any:
        """Convenience: start one process, run to completion, return its value."""
        proc = self.process(generator, name=name)
        self.run()
        return proc.value
