"""Shared-resource primitives for the DES kernel.

* :class:`Resource` — a counted semaphore with a FIFO wait queue (models
  e.g. the bounded worker pool of a storage service, or the limited
  number of in-flight requests a BeeGFS client node sustains).
* :class:`Container` — a continuous quantity that can be put/got (models
  buffer space).
* :class:`Store` — a FIFO of Python objects with blocking get (models
  request queues between services).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from ..errors import SimulationError
from .events import Event
from .kernel import Simulator

__all__ = ["Resource", "Container", "Store"]


class Resource:
    """A counted resource with FIFO queueing.

    Usage inside a process::

        req = resource.request()
        yield req
        try:
            ...critical section...
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that triggers once a unit is granted."""
        ev = Event(name=f"{self.name}.request")
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return one unit; wakes the longest-waiting requester."""
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the unit directly to the next waiter: occupancy unchanged.
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1


class Container:
    """A continuous quantity with blocking ``get``.

    ``put`` never blocks (unbounded by default); ``get`` blocks until the
    requested amount is available.  Waiters are served FIFO.
    """

    def __init__(self, sim: Simulator, init: float = 0.0, capacity: float = float("inf")):
        if init < 0 or init > capacity:
            raise ValueError(f"invalid initial level {init} (capacity {capacity})")
        self._sim = sim
        self.capacity = capacity
        self._level = float(init)
        self._getters: Deque[tuple[float, Event]] = deque()

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"negative put: {amount}")
        if self._level + amount > self.capacity + 1e-12:
            raise SimulationError("container overflow")
        self._level += amount
        self._drain()

    def get(self, amount: float) -> Event:
        if amount < 0:
            raise ValueError(f"negative get: {amount}")
        ev = Event(name="container.get")
        self._getters.append((amount, ev))
        self._drain()
        return ev

    def _drain(self) -> None:
        while self._getters:
            amount, ev = self._getters[0]
            if amount > self._level + 1e-12:
                break
            self._getters.popleft()
            self._level -= amount
            ev.succeed(amount)


class Store:
    """A FIFO queue of items with blocking ``get``."""

    def __init__(self, sim: Simulator, name: str = "store"):
        self._sim = sim
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        """Add an item; wakes the longest-waiting getter if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event carrying the next item once available."""
        ev = Event(name=f"{self.name}.get")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev
