"""Closed-form network models: Figures 3 and 9's arithmetic.

* :func:`network_bound` — the Figure 3 argument: with ``N`` client
  nodes and ``M`` storage servers on equal links of capacity ``B``,
  the network bound is ``B * min(N, M)``.
* :func:`balance_bandwidth_law` — Section IV-C1's consequence for a
  network-bound scenario: a file striped over ``k`` targets placed
  ``(a, b)`` across two servers moves ``b/k`` of its bytes through the
  busier link, so the bandwidth is ``B_eff * k / max(a, b)``; placement
  balance, not target count, sets the performance (Lesson 4).
"""

from __future__ import annotations

from ..errors import AnalysisError

__all__ = ["network_bound", "balance_bandwidth_law"]


def network_bound(num_nodes: int, num_servers: int, link_mib_s: float) -> float:
    """Aggregate network capacity between N client nodes and M servers.

    The narrower side of the fabric limits: ``min(N, M) * B``.  This is
    why single-node evaluations (Chowdhury et al.) cannot expose
    storage-side effects — the client side caps everything first.
    """
    if num_nodes < 1 or num_servers < 1:
        raise AnalysisError("need at least one node and one server")
    if link_mib_s <= 0:
        raise AnalysisError("link capacity must be positive")
    return link_mib_s * min(num_nodes, num_servers)


def balance_bandwidth_law(
    placement: tuple[int, int],
    per_server_mib_s: float,
) -> float:
    """Write bandwidth of a network-bound striped file, by placement.

    For placement ``(a, b)`` (with ``a + b = k`` targets), the busier
    server carries ``max(a, b) / k`` of the file at its effective link
    rate, and every server finishes no later than it does:

        BW = per_server * k / max(a, b)

    Checks against the paper's Figure 8: (1, 1), (3, 3), (4, 4) reach
    ``2 * per_server``; (0, x) stalls at ``per_server``; (1, 3) reaches
    ``4/3 * per_server``.
    """
    a, b = placement
    if a < 0 or b < 0 or a + b < 1:
        raise AnalysisError(f"invalid placement {placement}")
    if per_server_mib_s <= 0:
        raise AnalysisError("per-server rate must be positive")
    k = a + b
    return per_server_mib_s * k / max(a, b)
