"""Programmatic verdicts for the paper's seven "lessons learned".

Every lesson is a checkable claim about experiment outputs.  Each
function takes the relevant record stores and returns a
:class:`LessonVerdict` with the observed quantities, so EXPERIMENTS.md
can print paper-vs-measured side by side and tests can assert the
qualitative claims survive in the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..errors import AnalysisError
from ..methodology.records import RecordStore
from ..stats.bimodality import is_bimodal
from ..stats.tests import welch_ttest

__all__ = ["LessonVerdict", "evaluate_lessons"]


@dataclass(frozen=True)
class LessonVerdict:
    """One lesson's claim versus what the reproduction measured."""

    lesson: int
    claim: str
    observed: Mapping[str, float] = field(default_factory=dict)
    passed: bool = False

    def __str__(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        details = ", ".join(f"{k}={v:.3g}" for k, v in self.observed.items())
        return f"Lesson {self.lesson} [{status}]: {self.claim} ({details})"


def _mean_by_factor(store: RecordStore, factor: str) -> dict[object, float]:
    return {
        value: float(group.bandwidths().mean())
        for value, group in store.group_by_factor(factor).items()
    }


def lesson_1_2_node_count(fig4_s1: RecordStore, fig4_s2: RecordStore) -> LessonVerdict:
    """Lessons 1-2: node count limits bandwidth in both scenarios, and
    the storage-bound scenario needs more nodes with a heavier impact
    (paper: +64% on Ethernet, +270% on Omnipath)."""
    gains = {}
    for name, store in (("s1", fig4_s1), ("s2", fig4_s2)):
        means = _mean_by_factor(store, "num_nodes")
        if len(means) < 2:
            raise AnalysisError("lesson 1 needs a node sweep")
        single = means[min(means)]
        peak = max(means.values())
        gains[name] = peak / single - 1.0
    passed = gains["s2"] > gains["s1"] > 0.2
    return LessonVerdict(
        lesson=1,
        claim="node count limits I/O performance; heavier impact when storage-bound",
        observed={"gain_s1": gains["s1"], "gain_s2": gains["s2"]},
        passed=passed,
    )


def lesson_3_ppn(fig5: RecordStore) -> LessonVerdict:
    """Lesson 3: 16 ppn does not substitute for more nodes — the curves
    stay very similar (slight degradation allowed)."""
    by_ppn = fig5.group_by_factor("ppn")
    if set(by_ppn) < {8, 16}:
        raise AnalysisError("lesson 3 needs ppn 8 and 16 sweeps")
    rel_diffs = []
    means8 = _mean_by_factor(by_ppn[8], "num_nodes")
    means16 = _mean_by_factor(by_ppn[16], "num_nodes")
    for n in sorted(set(means8) & set(means16)):
        rel_diffs.append(abs(means16[n] - means8[n]) / means8[n])
    worst = float(max(rel_diffs))
    return LessonVerdict(
        lesson=3,
        claim="doubling processes per node leaves the node-scaling curve nearly unchanged",
        observed={"max_rel_diff": worst},
        passed=worst < 0.15,
    )


def lesson_4_balance(fig6_s1: RecordStore, per_server_mib_s: float) -> LessonVerdict:
    """Lesson 4: in the network-bound scenario bandwidth follows the
    balance law BW ~ B_eff * k / max(a, b), not the target count."""
    groups = fig6_s1.group_by_placement()
    errors = []
    for placement, group in groups.items():
        a, b = min(placement), max(placement)
        predicted = per_server_mib_s * (a + b) / max(a, b)
        observed = float(group.bandwidths().mean())
        errors.append(abs(observed - predicted) / predicted)
    worst = float(max(errors))
    # And the count itself must not explain performance: (0,1) vs (0,3)
    # should match within a few percent while (1,1) doubles (0,1).
    return LessonVerdict(
        lesson=4,
        claim="network-bound bandwidth follows placement balance, not target count",
        observed={"max_rel_error_vs_law": worst, "placements": float(len(groups))},
        passed=worst < 0.15,
    )


def lesson_5_bimodality(fig6_s1: RecordStore) -> LessonVerdict:
    """Lesson 5: means hide bi-modal behaviour; stripe counts 2, 3, 5, 6
    are bi-modal under PlaFRIM's round-robin chooser while 1, 4, 7, 8
    are not."""
    expected_bimodal = {2, 3, 5, 6}
    verdicts = {}
    for count, group in fig6_s1.group_by_factor("stripe_count").items():
        values = group.bandwidths()
        if len(values) < 10:
            raise AnalysisError(f"lesson 5 needs >= 10 reps per stripe count, got {len(values)}")
        verdicts[int(count)] = is_bimodal(values).bimodal
    hits = sum(
        1 for count, bimodal in verdicts.items() if bimodal == (count in expected_bimodal)
    )
    return LessonVerdict(
        lesson=5,
        claim="stripe counts 2/3/5/6 are bi-modal in scenario 1; 1/4/7/8 are not",
        observed={"correct_of_8": float(hits)},
        passed=hits >= 7,
    )


def lesson_6_stripe_scaling(fig6_s2: RecordStore, fig11: RecordStore) -> LessonVerdict:
    """Lesson 6: with storage-bound I/O, more OSTs mean more bandwidth,
    and the node count needed to reach the plateau grows with the
    stripe count."""
    means = _mean_by_factor(fig6_s2, "stripe_count")
    monotone = means[8] > means[4] > means[2] > means[1]
    growth = means[8] / means[1]

    # Plateau node count: smallest N achieving >= 95% of the stripe
    # count's peak mean.
    plateau: dict[int, int] = {}
    for count, group in fig11.group_by_factor("stripe_count").items():
        by_nodes = _mean_by_factor(group, "num_nodes")
        peak = max(by_nodes.values())
        plateau[int(count)] = min(n for n, m in by_nodes.items() if m >= 0.95 * peak)
    counts = sorted(plateau)
    plateau_grows = all(plateau[a] <= plateau[b] for a, b in zip(counts, counts[1:]))
    return LessonVerdict(
        lesson=6,
        claim="storage-bound bandwidth grows with stripe count; plateau needs more nodes",
        observed={
            "x8_over_x1": growth,
            **{f"plateau_nodes_k{c}": float(plateau[c]) for c in counts},
        },
        passed=monotone and growth > 3.0 and plateau_grows,
    )


def lesson_7_sharing(shared: RecordStore, distinct: RecordStore) -> LessonVerdict:
    """Lesson 7: sharing OSTs between concurrent applications does not
    significantly degrade individual performance (Welch p = 0.90 in
    the paper: the null of equal means is not rejected)."""
    a = np.concatenate([[app["bw_mib_s"] for app in r.apps] for r in shared])
    b = np.concatenate([[app["bw_mib_s"] for app in r.apps] for r in distinct])
    result = welch_ttest(a, b)
    return LessonVerdict(
        lesson=7,
        claim="sharing all OSTs vs none: no significant difference in app bandwidth",
        observed={"pvalue": result.pvalue, "mean_shared": float(np.mean(a)), "mean_distinct": float(np.mean(b))},
        passed=not result.rejects_at(0.05),
    )


def default_stripe_gain(fig6_s1: RecordStore) -> LessonVerdict:
    """The deployment recommendation: switching PlaFRIM's default from
    stripe count 4 to 8 transparently gains ~40% or more (scenario 1)."""
    means = _mean_by_factor(fig6_s1, "stripe_count")
    gain = means[8] / means[4] - 1.0
    return LessonVerdict(
        lesson=0,
        claim="default stripe count 8 vs 4 improves write bandwidth by >= 40% (scenario 1)",
        observed={"gain": gain},
        passed=gain >= 0.40,
    )


def evaluate_lessons(
    stores: Mapping[str, RecordStore],
    per_server_mib_s: float = 1100.0,
) -> list[LessonVerdict]:
    """Evaluate every lesson for which the needed records are present.

    Expected keys: ``fig4_s1``, ``fig4_s2``, ``fig5``, ``fig6_s1``,
    ``fig6_s2``, ``fig11``, ``fig13_shared``, ``fig13_distinct``.
    """
    verdicts: list[LessonVerdict] = []
    if "fig4_s1" in stores and "fig4_s2" in stores:
        verdicts.append(lesson_1_2_node_count(stores["fig4_s1"], stores["fig4_s2"]))
    if "fig5" in stores:
        verdicts.append(lesson_3_ppn(stores["fig5"]))
    if "fig6_s1" in stores:
        verdicts.append(lesson_4_balance(stores["fig6_s1"], per_server_mib_s))
        verdicts.append(lesson_5_bimodality(stores["fig6_s1"]))
        verdicts.append(default_stripe_gain(stores["fig6_s1"]))
    if "fig6_s2" in stores and "fig11" in stores:
        verdicts.append(lesson_6_stripe_scaling(stores["fig6_s2"], stores["fig11"]))
    if "fig13_shared" in stores and "fig13_distinct" in stores:
        verdicts.append(lesson_7_sharing(stores["fig13_shared"], stores["fig13_distinct"]))
    if not verdicts:
        raise AnalysisError("no recognised record stores supplied")
    return verdicts
