"""Analyses specific to the paper's questions.

* :mod:`repro.analysis.allocation` — the (min, max) placement notation
  (Figure 7), allocation enumeration and chooser placement
  distributions;
* :mod:`repro.analysis.netmodel` — the analytic N-nodes-vs-M-servers
  link-capacity model of Figure 3 and the balance-ratio bandwidth law
  of Section IV-C1;
* :mod:`repro.analysis.lessons` — programmatic verdicts for the seven
  "lessons learned", evaluated on experiment records.
"""

from .allocation import (
    AllocationDistribution,
    min_max,
    placement_distribution,
    possible_placements,
    random_placement_probabilities,
)
from .netmodel import balance_bandwidth_law, network_bound
from .advisor import Recommendation, StripeOption, advise
from .bottleneck import BottleneckReport, ResourceShare, attribute_bottlenecks, resource_kind
from .lessons import LessonVerdict, evaluate_lessons

__all__ = [
    "min_max",
    "possible_placements",
    "random_placement_probabilities",
    "placement_distribution",
    "AllocationDistribution",
    "network_bound",
    "balance_bandwidth_law",
    "LessonVerdict",
    "evaluate_lessons",
    "advise",
    "Recommendation",
    "StripeOption",
    "attribute_bottlenecks",
    "BottleneckReport",
    "ResourceShare",
    "resource_kind",
]
