"""Target-allocation analysis: the (min, max) notation of Figure 7.

The paper represents an OST allocation by the per-server target counts
``(min, max)`` — e.g. one target on the first server and three on the
second is (1, 3).  This module provides:

* :func:`min_max` — classify a placement;
* :func:`possible_placements` — enumerate the feasible (min, max)
  pairs for a stripe count on a given server layout;
* :func:`random_placement_probabilities` — the exact (hypergeometric)
  distribution under the *random* chooser, which explains why a random
  default would make stripe count 4's best case "as likely as the
  worst case" (Section IV-C1);
* :func:`placement_distribution` — the empirical distribution of any
  chooser, sampled through a real file system.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..beegfs.filesystem import BeeGFS, BeeGFSDeploymentSpec
from ..errors import AnalysisError

__all__ = [
    "min_max",
    "possible_placements",
    "random_placement_probabilities",
    "placement_distribution",
    "AllocationDistribution",
]


def min_max(placement: Sequence[int] | Mapping[str, int]) -> tuple[int, int]:
    """The paper's (min, max) notation over the two busiest servers.

    Accepts either per-server counts (a mapping) or a count sequence.
    For deployments with more than two servers, the two largest counts
    are reported (the notation's natural generalisation).
    """
    counts = sorted(placement.values() if isinstance(placement, Mapping) else placement)
    if not counts:
        raise AnalysisError("empty placement")
    if any(c < 0 for c in counts):
        raise AnalysisError(f"negative target count in {counts}")
    if len(counts) == 1:
        return (0, counts[0])
    top_two = counts[-2:]
    return (top_two[0], top_two[1])


def possible_placements(
    stripe_count: int, targets_per_server: Sequence[int] = (4, 4)
) -> list[tuple[int, int]]:
    """All feasible (min, max) pairs for a stripe count on a layout."""
    if stripe_count < 1:
        raise AnalysisError("stripe count must be >= 1")
    if stripe_count > sum(targets_per_server):
        raise AnalysisError(
            f"stripe count {stripe_count} exceeds {sum(targets_per_server)} targets"
        )
    found = set()
    ranges = [range(min(cap, stripe_count) + 1) for cap in targets_per_server]
    for combo in itertools.product(*ranges):
        if sum(combo) == stripe_count:
            found.add(min_max(combo))
    return sorted(found)


def random_placement_probabilities(
    stripe_count: int, targets_per_server: Sequence[int] = (4, 4)
) -> dict[tuple[int, int], float]:
    """Exact (min, max) distribution under uniform random selection.

    Multivariate hypergeometric: every ``stripe_count``-subset of the
    pooled targets is equally likely.
    """
    caps = list(targets_per_server)
    total = sum(caps)
    if stripe_count < 1 or stripe_count > total:
        raise AnalysisError(f"invalid stripe count {stripe_count} for {total} targets")
    denom = math.comb(total, stripe_count)
    probs: dict[tuple[int, int], float] = {}
    ranges = [range(min(cap, stripe_count) + 1) for cap in caps]
    for combo in itertools.product(*ranges):
        if sum(combo) != stripe_count:
            continue
        ways = math.prod(math.comb(cap, k) for cap, k in zip(caps, combo))
        key = min_max(combo)
        probs[key] = probs.get(key, 0.0) + ways / denom
    return dict(sorted(probs.items()))


@dataclass(frozen=True)
class AllocationDistribution:
    """Empirical placement distribution of one chooser configuration."""

    chooser: str
    stripe_count: int
    samples: int
    counts: Mapping[tuple[int, int], int]

    @property
    def probabilities(self) -> dict[tuple[int, int], float]:
        return {k: v / self.samples for k, v in sorted(self.counts.items())}

    @property
    def modes(self) -> list[tuple[int, int]]:
        """Placements that actually occur."""
        return sorted(k for k, v in self.counts.items() if v > 0)

    @property
    def balanced_fraction(self) -> float:
        """Fraction of allocations with equal counts on both servers."""
        return sum(v for (lo, hi), v in self.counts.items() if lo == hi) / self.samples

    def is_deterministic(self) -> bool:
        return len(self.modes) == 1


def placement_distribution(
    deployment: BeeGFSDeploymentSpec,
    stripe_count: int,
    chooser: str | None = None,
    samples: int = 200,
    seed: int = 0,
) -> AllocationDistribution:
    """Sample a chooser's (min, max) distribution through real creations.

    Each sample creates one file in a *fresh* file system (the paper's
    convention: a new file per benchmark run), so stateful choosers
    like round-robin are sampled at their per-run starting phases.
    """
    if samples < 1:
        raise AnalysisError("need at least one sample")
    chooser_name = chooser or deployment.default_chooser
    counts: dict[tuple[int, int], int] = {}
    for i in range(samples):
        fs = BeeGFS(deployment, seed=seed * 1_000_003 + i)
        fs.set_pattern("/", stripe_count=stripe_count, chooser=chooser_name)
        inode = fs.create_file(f"/sample-{i}.dat")
        key = min_max(fs.placement_of(inode))
        counts[key] = counts.get(key, 0) + 1
    return AllocationDistribution(
        chooser=chooser_name,
        stripe_count=stripe_count,
        samples=samples,
        counts=counts,
    )
