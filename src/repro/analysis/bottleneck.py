"""Bottleneck attribution: *why* a run performed the way it did.

The paper's methodology revolves around identifying the binding
constraint of each configuration (network link vs storage vs client,
Lessons 1-6).  This module turns the fluid engine's per-segment
constraint records into a time-weighted report: for what fraction of
the run each resource was saturated, grouped by resource class.

Used by :meth:`repro.engine.fluid_runner.FluidEngine.explain` and the
``beegfs-repro explain`` command.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import AnalysisError
from ..figures.ascii import render_table
from ..netsim.fluid import SegmentDetail

__all__ = ["ResourceShare", "BottleneckReport", "attribute_bottlenecks", "resource_kind"]

_KINDS = {
    "client": "per-node client ceiling",
    "link": "network link",
    "fabric": "switch fabric",
    "ingest": "server ingest ramp",
    "san": "system storage ramp",
    "pool": "per-server storage pool",
    "ost": "storage target",
}


def resource_kind(resource_id: str) -> str:
    """Human-readable class of a resource id (by prefix)."""
    prefix = resource_id.split(":", 1)[0]
    return _KINDS.get(prefix, prefix)


@dataclass(frozen=True)
class ResourceShare:
    """One resource's share of the run's binding time."""

    resource_id: str
    binding_share: float  # fraction of run time this resource was saturated
    mean_utilization: float  # time-weighted utilization while active

    @property
    def kind(self) -> str:
        return resource_kind(self.resource_id)


@dataclass(frozen=True)
class BottleneckReport:
    """Time-weighted constraint attribution of one run."""

    total_s: float
    shares: tuple[ResourceShare, ...]  # sorted by binding share, descending
    latency_capped_share: float  # fraction of time some flow was latency-capped

    @property
    def dominant(self) -> ResourceShare:
        """The resource that bound the run the longest."""
        return self.shares[0]

    def by_kind(self) -> dict[str, float]:
        """Binding share aggregated per resource class.

        A segment where e.g. both server links bind counts once for the
        'network link' class, so class shares stay in [0, 1].
        """
        out: dict[str, float] = {}
        for share in self.shares:
            out[share.kind] = min(1.0, out.get(share.kind, 0.0) + share.binding_share)
        return dict(sorted(out.items(), key=lambda kv: -kv[1]))

    def to_text(self, top: int = 8) -> str:
        rows = [
            [
                s.resource_id,
                s.kind,
                f"{s.binding_share * 100:.0f}%",
                f"{s.mean_utilization * 100:.0f}%",
            ]
            for s in self.shares[:top]
            if s.binding_share > 0
        ]
        table = render_table(
            ["resource", "class", "binding time", "mean utilization"],
            rows,
            f"Bottleneck attribution over {self.total_s:.1f}s of run time:",
        )
        extra = ""
        if self.latency_capped_share > 0.01:
            extra = (
                f"\n(some flows were blocking-request-latency capped for "
                f"{self.latency_capped_share * 100:.0f}% of the time)"
            )
        return table + extra


def attribute_bottlenecks(details: Sequence[SegmentDetail]) -> BottleneckReport:
    """Aggregate per-segment constraint records into a report."""
    if not details:
        raise AnalysisError("no segment details (run the engine with detail=True)")
    total = sum(d.duration for d in details)
    if total <= 0:
        raise AnalysisError("segments carry no duration")
    binding_time: dict[str, float] = {}
    util_time: dict[str, float] = {}
    active_time: dict[str, float] = {}
    latency_time = 0.0
    for d in details:
        for rid in d.binding:
            binding_time[rid] = binding_time.get(rid, 0.0) + d.duration
        for rid, util in d.utilization.items():
            util_time[rid] = util_time.get(rid, 0.0) + util * d.duration
            active_time[rid] = active_time.get(rid, 0.0) + d.duration
        if d.latency_capped > 0:
            latency_time += d.duration
    shares = tuple(
        sorted(
            (
                ResourceShare(
                    resource_id=rid,
                    binding_share=binding_time.get(rid, 0.0) / total,
                    mean_utilization=util_time[rid] / active_time[rid],
                )
                for rid in util_time
            ),
            key=lambda s: (-s.binding_share, -s.mean_utilization, s.resource_id),
        )
    )
    return BottleneckReport(
        total_s=total,
        shares=shares,
        latency_capped_share=latency_time / total,
    )
