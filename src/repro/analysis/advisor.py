"""A stripe-configuration advisor: the paper's recommendations as code.

The paper's motivation: "to see how much congestion could be mitigated
by some policy that adapts the stripe count of each application"
(Section I) — and its answer: don't adapt per application; pick a good
system default (all targets, balanced selection).  The advisor
packages that reasoning for any calibrated deployment: it evaluates
every (stripe count, chooser) pair with noise-free engine runs over
each chooser's reachable placements and reports expected/worst-case
bandwidth plus a recommendation with the paper's rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..beegfs.filesystem import BeeGFSDeploymentSpec
from ..calibration.plafrim import Calibration
from ..engine.base import EngineOptions
from ..engine.fluid_runner import FluidEngine
from ..errors import AnalysisError
from ..figures.ascii import render_table
from ..topology.graph import Topology
from ..units import GiB
from ..workload.generator import single_application
from .allocation import placement_distribution

__all__ = ["StripeOption", "Recommendation", "advise"]


@dataclass(frozen=True)
class StripeOption:
    """One evaluated (stripe count, chooser) configuration."""

    stripe_count: int
    chooser: str
    expected_mib_s: float
    worst_mib_s: float
    best_mib_s: float
    deterministic: bool  # only one placement possible

    @property
    def lottery_spread(self) -> float:
        """Best-over-worst ratio: the placement lottery's stake."""
        return self.best_mib_s / self.worst_mib_s if self.worst_mib_s > 0 else float("inf")


@dataclass(frozen=True)
class Recommendation:
    """The advisor's verdict for one deployment."""

    options: tuple[StripeOption, ...]
    recommended: StripeOption
    rationale: str

    def to_table(self) -> str:
        rows = [
            [
                o.stripe_count,
                o.chooser,
                f"{o.expected_mib_s:.0f}",
                f"{o.worst_mib_s:.0f}",
                f"{o.best_mib_s:.0f}",
                "yes" if o.deterministic else f"x{o.lottery_spread:.2f}",
            ]
            for o in self.options
        ]
        table = render_table(
            ["stripe", "chooser", "expected", "worst", "best", "deterministic"],
            rows,
            "Stripe configuration options (noise-free MiB/s):",
        )
        rec = self.recommended
        return (
            table
            + f"\n\nrecommendation: stripe count {rec.stripe_count} with the "
            + f"{rec.chooser} chooser ({rec.expected_mib_s:.0f} MiB/s expected)\n"
            + self.rationale
        )


def _expected_over_placements(
    calibration: Calibration,
    topology: Topology,
    deployment: BeeGFSDeploymentSpec,
    stripe_count: int,
    chooser: str,
    num_nodes: int,
    ppn: int,
    samples: int,
) -> StripeOption:
    """Probability-weighted bandwidth over the chooser's placements.

    Placements are sampled through real file creations; each distinct
    placement is then timed once with a noise-free run pinned to a
    concrete allocation via the fixed chooser.
    """
    dist = placement_distribution(deployment, stripe_count, chooser=chooser, samples=samples)
    # One concrete target tuple per observed (min, max) class.
    concrete: dict[tuple[int, int], tuple[int, ...]] = {}
    from ..beegfs.filesystem import BeeGFS
    from .allocation import min_max

    for i in range(samples):
        fs = BeeGFS(deployment, seed=7_000_003 + i)
        fs.set_pattern("/", stripe_count=stripe_count, chooser=chooser)
        inode = fs.create_file(f"/probe-{i}.dat")
        key = min_max(fs.placement_of(inode))
        concrete.setdefault(key, inode.pattern.targets)
        if len(concrete) == len(dist.counts):
            break

    options = EngineOptions(noise_enabled=False)
    by_placement: dict[tuple[int, int], float] = {}
    for key, targets in concrete.items():
        pinned = "fixed:" + ",".join(str(t) for t in targets)
        from dataclasses import replace as _replace

        fs_spec = BeeGFSDeploymentSpec(
            servers=deployment.servers,
            target_capacity_bytes=deployment.target_capacity_bytes,
            default_config=_replace(deployment.default_config, stripe_count=stripe_count),
            default_chooser=pinned,
            target_ordering=deployment.target_ordering,
            keep_data=False,
        )
        engine = FluidEngine(calibration, topology, fs_spec, seed=0, options=options)
        app = single_application(topology, num_nodes, ppn=ppn, total_bytes=8 * GiB)
        by_placement[key] = engine.run([app], rep=0).single.bandwidth_mib_s

    expected = sum(p * by_placement[key] for key, p in dist.probabilities.items())
    return StripeOption(
        stripe_count=stripe_count,
        chooser=chooser,
        expected_mib_s=expected,
        worst_mib_s=min(by_placement.values()),
        best_mib_s=max(by_placement.values()),
        deterministic=dist.is_deterministic(),
    )


def advise(
    calibration: Calibration,
    num_nodes: int = 8,
    ppn: int = 8,
    choosers: tuple[str, ...] = ("roundrobin", "random", "balanced"),
    stripe_counts: tuple[int, ...] = (),
    samples: int = 80,
) -> Recommendation:
    """Evaluate stripe configurations for a calibrated deployment.

    The recommendation maximises *worst-case* bandwidth (a default must
    not gamble on the placement lottery — Lesson 4), tie-broken by the
    expected value.
    """
    if num_nodes < 1 or ppn < 1:
        raise AnalysisError("need at least one node and one process")
    deployment = calibration.deployment()
    topology = calibration.platform(max(num_nodes, 2))
    counts = stripe_counts or tuple(range(1, deployment.num_targets + 1))

    options = []
    for chooser in choosers:
        for k in counts:
            options.append(
                _expected_over_placements(
                    calibration, topology, deployment, k, chooser, num_nodes, ppn, samples
                )
            )
    options.sort(key=lambda o: (-o.worst_mib_s, -o.expected_mib_s))
    # Among near-ties (within 1% of the best worst case), prefer the
    # configuration the paper argues is *robust*: deterministic
    # placement first, then the largest stripe count — a default must
    # stay right when the workload or node count changes.
    threshold = 0.99 * options[0].worst_mib_s
    candidates = [o for o in options if o.worst_mib_s >= threshold]
    candidates.sort(
        key=lambda o: (not o.deterministic, -o.stripe_count, -o.expected_mib_s)
    )
    best = candidates[0]
    max_count = deployment.num_targets
    rationale_parts = []
    if best.stripe_count == max_count:
        rationale_parts.append(
            f"the maximum stripe count ({max_count}) uses every target, so the "
            "placement across servers is always balanced and the worst case "
            "equals the best (the paper's headline recommendation)"
        )
    if best.chooser == "balanced":
        rationale_parts.append(
            "the balanced chooser removes the placement lottery at every count "
            "(Lesson 4's 'same number of targets in the storage servers')"
        )
    if not rationale_parts:  # pragma: no cover - defensive
        rationale_parts.append("it maximises worst-case bandwidth on this deployment")
    return Recommendation(
        options=tuple(options),
        recommended=best,
        rationale="rationale: " + "; ".join(rationale_parts) + ".",
    )
