"""Platform topology: hosts, switches and capacitated links.

The paper's experiments run on PlaFRIM's Bora cluster, whose compute
nodes reach the two BeeGFS storage hosts through a single switch over
either a 10 Gbit/s Ethernet or a 100 Gbit/s Omnipath fabric.  This
package models that wiring explicitly (backed by a :mod:`networkx`
graph) and provides builders for both scenarios plus arbitrary custom
platforms.
"""

from .graph import Host, HostRole, Link, Topology
from .builders import (
    PlatformSpec,
    NetworkSpec,
    build_platform,
    plafrim_ethernet,
    plafrim_omnipath,
    plafrim_spec,
)

__all__ = [
    "Host",
    "HostRole",
    "Link",
    "Topology",
    "PlatformSpec",
    "NetworkSpec",
    "build_platform",
    "plafrim_ethernet",
    "plafrim_omnipath",
    "plafrim_spec",
]
