"""Topology graph: hosts, switches and links with capacities.

A :class:`Topology` is an undirected graph whose vertices are
:class:`Host` objects (compute nodes, storage hosts, switches) and whose
edges are :class:`Link` objects carrying a capacity in MiB/s and a
one-way latency in seconds.  Routes are shortest paths (hop count); the
PlaFRIM platforms built in :mod:`repro.topology.builders` are stars, so
every route is ``host - switch - host``, but the code handles arbitrary
multi-switch fabrics.

Each link exposes a stable ``resource_id`` so the network simulator can
treat links as capacitated resources.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import networkx as nx

from ..errors import RoutingError, TopologyError

__all__ = ["HostRole", "Host", "Link", "Topology"]


class HostRole(enum.Enum):
    """What a vertex of the platform graph is."""

    COMPUTE = "compute"
    STORAGE = "storage"
    SWITCH = "switch"
    MANAGEMENT = "management"


@dataclass(frozen=True)
class Host:
    """A vertex of the platform graph.

    ``attrs`` carries free-form hardware details (cores, memory, ...)
    that models may consult; the simulator core only needs ``name`` and
    ``role``.
    """

    name: str
    role: HostRole
    attrs: dict = field(default_factory=dict, compare=False, hash=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise TopologyError("host name must be non-empty")


@dataclass(frozen=True)
class Link:
    """An undirected capacitated link between two hosts.

    ``capacity_mib_s`` is the raw line rate of the link in MiB/s;
    effective throughput (protocol efficiency, server-side ingest
    behaviour) is modelled separately by the capacity providers of the
    engine, so the topology stays a pure hardware description.
    """

    a: str
    b: str
    capacity_mib_s: float
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise TopologyError(f"self-link on {self.a!r}")
        if self.capacity_mib_s <= 0:
            raise TopologyError(f"link {self.a}-{self.b}: capacity must be positive")
        if self.latency_s < 0:
            raise TopologyError(f"link {self.a}-{self.b}: negative latency")

    @property
    def resource_id(self) -> str:
        """Stable identifier used by the network simulator (order-free)."""
        lo, hi = sorted((self.a, self.b))
        return f"link:{lo}<->{hi}"

    def other(self, host: str) -> str:
        """The endpoint opposite to ``host``."""
        if host == self.a:
            return self.b
        if host == self.b:
            return self.a
        raise TopologyError(f"{host!r} is not an endpoint of {self.resource_id}")


class Topology:
    """The platform graph with role-aware queries and routing."""

    def __init__(self, name: str = "platform"):
        self.name = name
        self._graph = nx.Graph()
        self._hosts: dict[str, Host] = {}
        self._links: dict[str, Link] = {}
        # Shortest paths memoised per (src, dst); engines route the same
        # node/server pairs on every repetition.  Invalidated whenever
        # the graph gains a vertex or an edge.
        self._route_cache: dict[tuple[str, str], tuple[Link, ...]] = {}

    # -- construction --------------------------------------------------------

    def add_host(self, name: str, role: HostRole, **attrs: object) -> Host:
        """Add a vertex; raises if the name is taken."""
        if name in self._hosts:
            raise TopologyError(f"duplicate host {name!r}")
        host = Host(name, role, dict(attrs))
        self._hosts[name] = host
        self._graph.add_node(name, role=role)
        self._route_cache.clear()
        return host

    def add_link(
        self,
        a: str,
        b: str,
        capacity_mib_s: float,
        latency_s: float = 0.0,
    ) -> Link:
        """Connect two existing hosts; raises on duplicates or unknown hosts."""
        for end in (a, b):
            if end not in self._hosts:
                raise TopologyError(f"unknown host {end!r}")
        link = Link(a, b, capacity_mib_s, latency_s)
        if link.resource_id in self._links:
            raise TopologyError(f"duplicate link {link.resource_id}")
        self._links[link.resource_id] = link
        self._graph.add_edge(a, b, resource_id=link.resource_id)
        self._route_cache.clear()
        return link

    # -- queries -------------------------------------------------------------

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise TopologyError(f"unknown host {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._hosts

    def hosts(self, role: HostRole | None = None) -> list[Host]:
        """All hosts, optionally filtered by role, in insertion order."""
        if role is None:
            return list(self._hosts.values())
        return [h for h in self._hosts.values() if h.role is role]

    def compute_nodes(self) -> list[Host]:
        return self.hosts(HostRole.COMPUTE)

    def storage_hosts(self) -> list[Host]:
        return self.hosts(HostRole.STORAGE)

    def links(self) -> list[Link]:
        return list(self._links.values())

    def link(self, resource_id: str) -> Link:
        try:
            return self._links[resource_id]
        except KeyError:
            raise TopologyError(f"unknown link {resource_id!r}") from None

    def links_of(self, host: str) -> list[Link]:
        """All links incident to ``host``."""
        self.host(host)
        return [lk for lk in self._links.values() if host in (lk.a, lk.b)]

    def degree(self, host: str) -> int:
        return len(self.links_of(host))

    # -- routing ---------------------------------------------------------------

    def route(self, src: str, dst: str) -> list[Link]:
        """Links along the (hop-count) shortest path from ``src`` to ``dst``."""
        cached = self._route_cache.get((src, dst))
        if cached is not None:
            return list(cached)
        for end in (src, dst):
            self.host(end)
        if src == dst:
            self._route_cache[(src, dst)] = ()
            return []
        try:
            path = nx.shortest_path(self._graph, src, dst)
        except nx.NetworkXNoPath:
            raise RoutingError(f"no route from {src!r} to {dst!r}") from None
        links = tuple(
            self._links[self._graph.edges[u, v]["resource_id"]] for u, v in zip(path, path[1:])
        )
        self._route_cache[(src, dst)] = links
        return list(links)

    def route_latency(self, src: str, dst: str) -> float:
        """Sum of one-way link latencies along the route."""
        return sum(link.latency_s for link in self.route(src, dst))

    def route_capacity(self, src: str, dst: str) -> float:
        """Raw capacity of the narrowest link along the route."""
        route = self.route(src, dst)
        if not route:
            raise RoutingError(f"empty route {src!r}->{dst!r}")
        return min(link.capacity_mib_s for link in route)

    def validate(self) -> None:
        """Check the platform is usable for an I/O experiment."""
        if not self.compute_nodes():
            raise TopologyError("platform has no compute nodes")
        if not self.storage_hosts():
            raise TopologyError("platform has no storage hosts")
        if not nx.is_connected(self._graph):
            raise TopologyError("platform graph is not connected")

    def __iter__(self) -> Iterator[Host]:
        return iter(self._hosts.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = {role.value: len(self.hosts(role)) for role in HostRole if self.hosts(role)}
        return f"<Topology {self.name!r} {counts} links={len(self._links)}>"

    # -- bulk helpers ----------------------------------------------------------

    def add_star(
        self,
        switch: str,
        hosts: Iterable[str],
        capacity_mib_s: float,
        latency_s: float = 0.0,
    ) -> list[Link]:
        """Link every host in ``hosts`` to ``switch`` with identical links."""
        return [self.add_link(h, switch, capacity_mib_s, latency_s) for h in hosts]
