"""Builders for concrete platforms, in particular PlaFRIM.

The paper (Section III-A) describes PlaFRIM's Bora cluster:

* up to 192 compute nodes, each with two 18-core Xeons and 192 GiB RAM;
* two storage hosts, each running one OSS with four OSTs (12x 1.8 TB
  10k-RPM HDDs in RAID-6 per OST) and one MDS with one MDT (2 SSDs in
  RAID-1);
* *Scenario 1*: a 10 Gbit/s Ethernet fabric (Dell S4148F-ON switch) —
  the network is slower than the storage;
* *Scenario 2*: a 100 Gbit/s Omnipath fabric (Dell H1048-OPF switch) —
  the storage is slower than the network.

:func:`build_platform` turns a :class:`PlatformSpec` into a
:class:`~repro.topology.graph.Topology`; :func:`plafrim_ethernet` and
:func:`plafrim_omnipath` build the two scenarios with the paper's
values.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import ConfigError
from ..units import gbit_s_to_mib_s
from .graph import HostRole, Topology

__all__ = [
    "NetworkSpec",
    "PlatformSpec",
    "build_platform",
    "plafrim_spec",
    "plafrim_ethernet",
    "plafrim_omnipath",
    "SWITCH_NAME",
    "compute_node_name",
    "storage_host_name",
]

SWITCH_NAME = "switch0"


def compute_node_name(index: int) -> str:
    """Canonical name of the i-th compute node (0-based)."""
    return f"bora{index + 1:03d}"


def storage_host_name(index: int) -> str:
    """Canonical name of the i-th storage host (0-based)."""
    return f"storage{index + 1}"


@dataclass(frozen=True)
class NetworkSpec:
    """One fabric: per-port line rate and latency, plus a switch fabric cap."""

    name: str
    link_gbit_s: float
    latency_s: float = 5e-6
    switch_model: str = ""
    # Switch backplanes are non-blocking for our port counts; modelled as a
    # large-but-finite fabric capacity so pathological configs still saturate.
    fabric_gbit_s: float = 3200.0

    def __post_init__(self) -> None:
        if self.link_gbit_s <= 0:
            raise ConfigError(f"network {self.name!r}: link speed must be positive")
        if self.fabric_gbit_s < self.link_gbit_s:
            raise ConfigError(f"network {self.name!r}: fabric slower than one port")

    @property
    def link_mib_s(self) -> float:
        """Raw per-port capacity in MiB/s."""
        return gbit_s_to_mib_s(self.link_gbit_s)

    @property
    def fabric_mib_s(self) -> float:
        return gbit_s_to_mib_s(self.fabric_gbit_s)


@dataclass(frozen=True)
class PlatformSpec:
    """Everything needed to instantiate a platform topology."""

    name: str
    network: NetworkSpec
    num_compute_nodes: int = 192
    num_storage_hosts: int = 2
    cores_per_node: int = 36
    node_memory_gib: int = 192
    extra_attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_compute_nodes < 1:
            raise ConfigError("platform needs at least one compute node")
        if self.num_storage_hosts < 1:
            raise ConfigError("platform needs at least one storage host")
        if self.cores_per_node < 1:
            raise ConfigError("cores_per_node must be >= 1")

    def with_network(self, network: NetworkSpec) -> "PlatformSpec":
        """A copy of this spec on a different fabric."""
        return replace(self, network=network, name=f"{self.name}-{network.name}")


def build_platform(spec: PlatformSpec) -> Topology:
    """Instantiate the star topology described by ``spec``."""
    topo = Topology(name=spec.name)
    topo.add_host(
        SWITCH_NAME,
        HostRole.SWITCH,
        model=spec.network.switch_model,
        fabric_mib_s=spec.network.fabric_mib_s,
    )
    names = []
    for i in range(spec.num_compute_nodes):
        name = compute_node_name(i)
        topo.add_host(
            name,
            HostRole.COMPUTE,
            cores=spec.cores_per_node,
            memory_gib=spec.node_memory_gib,
            **spec.extra_attrs,
        )
        names.append(name)
    topo.add_star(SWITCH_NAME, names, spec.network.link_mib_s, spec.network.latency_s)

    storage_names = []
    for i in range(spec.num_storage_hosts):
        name = storage_host_name(i)
        topo.add_host(name, HostRole.STORAGE)
        storage_names.append(name)
    topo.add_star(SWITCH_NAME, storage_names, spec.network.link_mib_s, spec.network.latency_s)
    topo.validate()
    return topo


# -- PlaFRIM ------------------------------------------------------------------

ETHERNET_10G = NetworkSpec(
    name="ethernet",
    link_gbit_s=10.0,
    latency_s=25e-6,
    switch_model="Dell S4148F-ON",
)

OMNIPATH_100G = NetworkSpec(
    name="omnipath",
    link_gbit_s=100.0,
    latency_s=2e-6,
    switch_model="Dell H1048-OPF",
)


def plafrim_spec(network: NetworkSpec, num_compute_nodes: int = 64) -> PlatformSpec:
    """The Bora/PlaFRIM platform on the given fabric.

    The paper uses at most 32 nodes; the default of 64 leaves headroom
    for extension studies while keeping topology construction cheap.
    """
    return PlatformSpec(
        name=f"plafrim-{network.name}",
        network=network,
        num_compute_nodes=num_compute_nodes,
        num_storage_hosts=2,
        cores_per_node=36,
        node_memory_gib=192,
    )


def plafrim_ethernet(num_compute_nodes: int = 64) -> Topology:
    """Scenario 1 platform: the network is slower than the storage."""
    return build_platform(plafrim_spec(ETHERNET_10G, num_compute_nodes))


def plafrim_omnipath(num_compute_nodes: int = 64) -> Topology:
    """Scenario 2 platform: the storage is slower than the network."""
    return build_platform(plafrim_spec(OMNIPATH_100G, num_compute_nodes))
