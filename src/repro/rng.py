"""Deterministic random-number management.

Every stochastic element of the reproduction (target selection, device
variability, system-state noise, protocol shuffling/waits) draws from a
:class:`numpy.random.Generator` derived from a single experiment seed
through a *named* tree of :class:`numpy.random.SeedSequence` spawns.  Two
properties follow:

* results are exactly reproducible given the experiment seed, and
* sub-streams are independent of the *order* in which they are requested
  (they are keyed by name, not by call sequence), so adding a new noise
  source does not perturb existing experiments.
"""

from __future__ import annotations

import zlib
from typing import Iterable

import numpy as np

__all__ = ["stable_hash32", "SeedTree", "spawn_rng"]


def stable_hash32(*keys: object) -> int:
    """A process-stable 32-bit hash of a tuple of keys.

    Python's builtin :func:`hash` is salted per process for strings, so it
    cannot be used to derive reproducible seeds.  CRC32 over the repr is
    stable, fast, and good enough for seeding (the seed sequence does the
    actual mixing).
    """
    text = "\x1f".join(repr(k) for k in keys)
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


class SeedTree:
    """A tree of named, independent random generators.

    >>> tree = SeedTree(42)
    >>> rng = tree.rng("fig6", "scenario1", rep=17)
    >>> child = tree.child("fig6")            # a subtree with its own root

    The same ``(root_seed, keys...)`` always yields the same stream.
    """

    def __init__(self, seed: int | None, _path: tuple[int, ...] = ()):
        if seed is not None and seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self._seed = 0 if seed is None else int(seed)
        self._path = _path

    @property
    def seed(self) -> int:
        """Root seed of this (sub)tree."""
        return self._seed

    def _entropy(self, keys: Iterable[object]) -> list[int]:
        entropy: list[int] = [self._seed, *self._path]
        entropy.extend(stable_hash32(k) for k in keys)
        return entropy

    def seed_sequence(self, *keys: object, **named: object) -> np.random.SeedSequence:
        """Build the :class:`~numpy.random.SeedSequence` for a key path."""
        all_keys = list(keys) + sorted(named.items())
        return np.random.SeedSequence(self._entropy(all_keys))

    def rng(self, *keys: object, **named: object) -> np.random.Generator:
        """Return the generator for the given key path (PCG64)."""
        return np.random.Generator(np.random.PCG64(self.seed_sequence(*keys, **named)))

    def child(self, *keys: object) -> "SeedTree":
        """Return an independent subtree rooted at the given key path."""
        path = self._path + tuple(stable_hash32(k) for k in keys)
        return SeedTree(self._seed, path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeedTree(seed={self._seed}, path={self._path})"


def spawn_rng(seed: int | None, *keys: object) -> np.random.Generator:
    """Shorthand for ``SeedTree(seed).rng(*keys)``."""
    return SeedTree(seed).rng(*keys)
