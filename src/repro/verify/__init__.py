"""Simulation guardrails: invariants, conformance, deterministic replay.

Three layers of machine-checked trust (the paper's lesson 5 — means
hide bi-modal behaviour — applies to *model bugs* too: conclusions are
only as trustworthy as every individual simulated point):

* :mod:`repro.verify.invariants` — runtime checkers pluggable into both
  engines via ``EngineOptions(validation=...)``;
* :mod:`repro.verify.conformance` — differential fluid-vs-DES harness
  with a golden-results store for regression pinning;
* :mod:`repro.verify.replay` — same-seed runs must be byte-identical,
  fault schedules and retry/backoff included;
* :mod:`repro.verify.suite` — the ``beegfs-repro verify`` entry point
  tying the three together.

This ``__init__`` deliberately imports only the leaf modules (levels
and invariant checkers): the engines import them at module load, while
:mod:`.conformance`/:mod:`.replay`/:mod:`.suite` import the engines —
eager re-export here would be a cycle.  The heavier modules are lazily
resolved through ``__getattr__``.
"""

from __future__ import annotations

from .invariants import INJECTION_KINDS, RuntimeChecker, forced_injection, make_checker
from .level import ValidationLevel

__all__ = [
    "ValidationLevel",
    "RuntimeChecker",
    "make_checker",
    "forced_injection",
    "INJECTION_KINDS",
    "conformance",
    "replay",
    "suite",
]

_LAZY_SUBMODULES = ("conformance", "replay", "suite")


def __getattr__(name: str):
    if name in _LAZY_SUBMODULES:
        import importlib

        return importlib.import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
