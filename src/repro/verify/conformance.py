"""Cross-engine differential conformance.

The repo ships two engines that model the same system at different
granularities: the fluid engine (aggregate piecewise-constant-rate
flows) and the DES engine (request-level processor sharing).  Their
approximations differ, so they will never agree bit-for-bit — but on
configurations small enough for the DES, their bandwidth predictions
must agree within a *declared* tolerance, and each engine individually
must reproduce its own pinned golden numbers exactly.

Two layers of defence, with different purposes:

* **cross-engine tolerance** (``RunSpec.tolerance``, rel.) catches
  model drift — one engine's physics changing while the other's stays
  put.  Tolerances are part of each spec, not a global constant, so a
  case that is known to stress the fluid approximation can declare a
  looser band and the declaration is visible in the conformance report.
* **golden pinning** (``tests/golden/conformance.json``) catches *any*
  numeric change, including a lockstep change of both engines.  The
  runs are deterministic (noise off, metadata overhead off), so goldens
  compare at ``GOLDEN_RTOL`` — tight enough that only a genuine model
  change trips it, loose enough to survive benign float reassociation.

Regenerate goldens deliberately via ``repro verify --suite conformance
--update-golden`` and review the diff like any other behaviour change.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from ..calibration.plafrim import scenario_by_name
from ..engine.base import EngineOptions
from ..engine.des_runner import DESEngine
from ..engine.fluid_runner import FluidEngine
from ..errors import ConfigError, GoldenMismatchError
from ..faults.schedule import FaultSchedule, degraded_target
from ..units import MiB
from ..workload.generator import single_application
from .level import ValidationLevel

__all__ = [
    "RunSpec",
    "CaseResult",
    "ConformanceReport",
    "CONFORMANCE_SPECS",
    "GOLDEN_RTOL",
    "default_golden_path",
    "run_conformance",
]

#: Relative tolerance for comparing a deterministic run against its
#: pinned golden value.  Runs are noise-free, so this only needs to
#: absorb float reassociation across platforms/Python versions.
GOLDEN_RTOL = 1e-6

_FAULT_KINDS = ("", "degraded-target")


@dataclass(frozen=True)
class RunSpec:
    """One conformance case: a workload both engines must agree on."""

    name: str
    scenario: str = "scenario1"
    num_nodes: int = 2
    ppn: int = 4
    stripe_count: int = 4
    total_mib: int = 512
    transfer_mib: int = 1
    chooser: str | None = None
    fault: str = ""  # "" or "degraded-target"
    tolerance: float = 0.15

    def __post_init__(self) -> None:
        if self.fault not in _FAULT_KINDS:
            raise ConfigError(
                f"conformance spec {self.name!r}: unknown fault kind {self.fault!r} "
                f"(expected one of {_FAULT_KINDS})"
            )
        if not (0.0 < self.tolerance < 1.0):
            raise ConfigError(
                f"conformance spec {self.name!r}: tolerance must be in (0, 1), "
                f"got {self.tolerance}"
            )

    def fault_schedule(self) -> FaultSchedule | None:
        if self.fault == "degraded-target":
            # A limping (not offline) target: both engines model the
            # capacity dip identically, so cross-engine agreement is a
            # fair ask.  Hard outages exercise retry/abandon machinery
            # whose timing semantics legitimately differ between the
            # engines; those paths are covered by the replay suite.
            # The 0.1 multiplier pushes the OST below the network share
            # so the fault actually binds (milder dips hide behind the
            # fabric bottleneck and the case would test nothing).
            return FaultSchedule([degraded_target(201, start_s=0.02, duration_s=5.0, multiplier=0.1)])
        return None


#: The shipped conformance corpus.  Small volumes keep the DES cheap;
#: the cases cover both calibration scenarios, the stripe counts the
#: paper sweeps, pinned unbalanced/balanced placements, and a degraded
#: target.
CONFORMANCE_SPECS: tuple[RunSpec, ...] = (
    RunSpec(name="s1-stripe4", scenario="scenario1", stripe_count=4),
    RunSpec(
        name="s1-stripe2-balanced",
        scenario="scenario1",
        num_nodes=4,
        stripe_count=2,
        chooser="fixed:101,201",
    ),
    RunSpec(
        name="s1-stripe2-unbalanced",
        scenario="scenario1",
        num_nodes=4,
        stripe_count=2,
        chooser="fixed:201,202",
    ),
    RunSpec(name="s1-stripe8", scenario="scenario1", num_nodes=4, ppn=8, stripe_count=8, total_mib=1024),
    RunSpec(name="s2-stripe1", scenario="scenario2", stripe_count=1, total_mib=256),
    RunSpec(name="s2-stripe4", scenario="scenario2", stripe_count=4),
    RunSpec(
        name="s1-degraded-target",
        scenario="scenario1",
        num_nodes=4,
        stripe_count=4,
        chooser="fixed:101,201,102,202",
        fault="degraded-target",
        total_mib=256,
        tolerance=0.2,
    ),
)


@dataclass(frozen=True)
class CaseResult:
    """Outcome of one conformance case."""

    name: str
    fluid_mib_s: float
    des_mib_s: float
    tolerance: float
    rel_diff: float
    agrees: bool
    golden_errors: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return self.agrees and not self.golden_errors


@dataclass(frozen=True)
class ConformanceReport:
    """All case outcomes plus the golden-store bookkeeping."""

    cases: tuple[CaseResult, ...]
    golden_path: Path | None = None
    golden_updated: bool = False
    missing_golden: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.cases)

    @property
    def failures(self) -> tuple[CaseResult, ...]:
        return tuple(c for c in self.cases if not c.ok)

    def lines(self) -> list[str]:
        out = []
        for c in self.cases:
            status = "ok" if c.ok else "FAIL"
            out.append(
                f"  [{status}] {c.name}: fluid {c.fluid_mib_s:.2f} vs DES {c.des_mib_s:.2f} MiB/s "
                f"(rel diff {c.rel_diff:.3f}, tol {c.tolerance:.2f})"
            )
            for err in c.golden_errors:
                out.append(f"         golden: {err}")
        if self.missing_golden:
            out.append(
                f"  note: no golden entry for {', '.join(self.missing_golden)} "
                "(run with --update-golden to pin)"
            )
        return out


def default_golden_path() -> Path:
    """``tests/golden/conformance.json`` relative to the repo root."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden" / "conformance.json"


@dataclass
class _EngineCache:
    """Calibrations/topologies/engines shared across cases of one sweep."""

    level: ValidationLevel = ValidationLevel.OFF
    _scenarios: dict = field(default_factory=dict)

    def scenario(self, name: str):
        if name not in self._scenarios:
            calib = scenario_by_name(name)
            self._scenarios[name] = (calib, calib.platform(8))
        return self._scenarios[name]

    def engines(self, spec: RunSpec) -> tuple[FluidEngine, DESEngine]:
        calib, topo = self.scenario(spec.scenario)
        kwargs: dict = {"stripe_count": spec.stripe_count}
        if spec.chooser:
            kwargs["chooser"] = spec.chooser
        options = EngineOptions(
            noise_enabled=False,
            include_metadata_overhead=False,
            validation=self.level,
            fault_schedule=spec.fault_schedule(),
        )
        deployment = calib.deployment(**kwargs)
        return (
            FluidEngine(calib, topo, deployment, seed=0, options=options),
            DESEngine(calib, topo, deployment, seed=0, options=options),
        )


def _run_case(spec: RunSpec, cache: _EngineCache) -> tuple[float, float]:
    fluid, des = cache.engines(spec)
    _, topo = cache.scenario(spec.scenario)

    def app():
        return single_application(
            topo,
            spec.num_nodes,
            ppn=spec.ppn,
            total_bytes=spec.total_mib * MiB,
            transfer_size=spec.transfer_mib * MiB,
        )

    bw_fluid = fluid.run([app()], rep=0).single.bandwidth_mib_s
    bw_des = des.run([app()], rep=0).single.bandwidth_mib_s
    return bw_fluid, bw_des


def _load_golden(path: Path) -> dict:
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise GoldenMismatchError(f"unreadable golden store {path}: {exc}") from exc
    return data.get("cases", {})


def _golden_errors(name: str, golden: dict, fluid: float, des: float) -> tuple[str, ...]:
    entry = golden.get(name)
    if entry is None:
        return ()
    errors = []
    for label, observed in (("fluid_mib_s", fluid), ("des_mib_s", des)):
        pinned = float(entry[label])
        if not math.isclose(observed, pinned, rel_tol=GOLDEN_RTOL, abs_tol=1e-9):
            errors.append(
                f"{label} drifted from pinned {pinned:.6f} to {observed:.6f} MiB/s "
                f"(rtol {GOLDEN_RTOL:g})"
            )
    return tuple(errors)


def run_conformance(
    specs: tuple[RunSpec, ...] = CONFORMANCE_SPECS,
    level: ValidationLevel = ValidationLevel.PARANOID,
    golden_path: Path | None = None,
    update_golden: bool = False,
    progress=None,
) -> ConformanceReport:
    """Run every spec through both engines and compare.

    With ``update_golden`` the observed values are written back to the
    golden store (after the cross-engine check, so a disagreeing pair is
    never pinned).  Invariant checking runs at ``level`` inside both
    engines, so a conformance sweep is also an invariant sweep.
    """
    golden_path = golden_path if golden_path is not None else default_golden_path()
    golden = {} if update_golden else _load_golden(golden_path)
    cache = _EngineCache(level=level)
    cases = []
    observed: dict[str, dict[str, float]] = {}
    missing = []
    for spec in specs:
        bw_fluid, bw_des = _run_case(spec, cache)
        rel_diff = abs(bw_fluid - bw_des) / max(abs(bw_des), 1e-12)
        agrees = rel_diff <= spec.tolerance
        golden_errors = _golden_errors(spec.name, golden, bw_fluid, bw_des)
        if not update_golden and spec.name not in golden:
            missing.append(spec.name)
        observed[spec.name] = {"fluid_mib_s": bw_fluid, "des_mib_s": bw_des}
        case = CaseResult(
            name=spec.name,
            fluid_mib_s=bw_fluid,
            des_mib_s=bw_des,
            tolerance=spec.tolerance,
            rel_diff=rel_diff,
            agrees=agrees,
            golden_errors=golden_errors,
        )
        cases.append(case)
        if progress is not None:
            progress(("ok " if case.ok else "FAIL") + f" {spec.name}")
    updated = False
    if update_golden and all(c.agrees for c in cases):
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(
            json.dumps(
                {
                    "format": 1,
                    "golden_rtol": GOLDEN_RTOL,
                    "cases": observed,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        updated = True
    return ConformanceReport(
        cases=tuple(cases),
        golden_path=golden_path,
        golden_updated=updated,
        missing_golden=tuple(missing),
    )
