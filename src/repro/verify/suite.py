"""The ``repro verify`` verification suite.

Ties the three guardrail layers into one runnable gate:

* **invariants** — paranoid (or basic) campaigns over shipped
  experiment specs; any run tripping an invariant is quarantined by the
  protocol runner exactly like a crash under ``on_error="skip"``, and
  every quarantined violation fails the suite;
* **conformance** — the fluid-vs-DES differential harness of
  :mod:`repro.verify.conformance`, including golden pinning;
* **replay** — same-seed determinism proofs of
  :mod:`repro.verify.replay`, covering noise, fault schedules and
  retry/backoff.

``inject`` seeds a deliberate violation ("over-capacity" and
"byte-loss" corrupt the invariant checkers' view of otherwise-correct
runs; "rng-perturb" replays under a different seed) and then *expects*
the suite to fail: detection means the machinery works (exit 1 from the
CLI); non-detection is itself a failure of the verifier (exit 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..engine.base import EngineOptions
from ..engine.des_runner import DESEngine
from ..engine.fluid_runner import FluidEngine
from ..errors import ConfigError, ReplayDivergenceError
from ..faults.schedule import FaultSchedule, target_outage
from ..storage.client_model import RetryPolicy
from ..units import MiB
from ..workload.generator import single_application
from .conformance import CONFORMANCE_SPECS, ConformanceReport, run_conformance
from .invariants import forced_injection
from .level import ValidationLevel
from .replay import check_replay

__all__ = [
    "SuiteReport",
    "SUITES",
    "SUITE_INJECTIONS",
    "run_invariants_suite",
    "run_replay_suite",
    "run_suite",
]

SUITES = ("invariants", "conformance", "replay", "all")
SUITE_INJECTIONS = ("over-capacity", "byte-loss", "rng-perturb")

#: Experiments the invariants sweep covers, with sizes trimmed so a
#: paranoid pass stays in CI budget (the full 32 GiB / 100-rep campaigns
#: check the same code paths, just more of them).
INVARIANT_EXPERIMENTS = ("fig6", "faults")


@dataclass
class SuiteReport:
    """Outcome of one ``repro verify`` invocation."""

    suite: str
    level: ValidationLevel
    passed: list[str] = field(default_factory=list)
    failed: list[str] = field(default_factory=list)
    injection: str | None = None
    injection_detected: bool = False

    @property
    def ok(self) -> bool:
        if self.injection is not None:
            return self.injection_detected
        return not self.failed

    def exit_code(self) -> int:
        """0 all green; 1 violations found; 2 injection went undetected."""
        if self.injection is not None:
            return 1 if self.injection_detected else 2
        return 0 if not self.failed else 1

    def lines(self) -> list[str]:
        out = [f"verify suite={self.suite} level={self.level.name.lower()}"]
        out.extend(f"  pass: {p}" for p in self.passed)
        out.extend(f"  FAIL: {f}" for f in self.failed)
        if self.injection is not None:
            verdict = (
                "detected (verifier works)"
                if self.injection_detected
                else "NOT DETECTED (verifier is broken)"
            )
            out.append(f"  injection {self.injection!r}: {verdict}")
        return out


# -- invariants sweep --------------------------------------------------------------


def _experiment_specs(experiment: str):
    """(specs, engine options) for one invariant-sweep experiment."""
    if experiment == "fig6":
        from ..experiments import exp_stripecount

        specs = exp_stripecount.specs(("scenario1",))
        trimmed = []
        for spec in specs:
            factors = dict(spec.factors)
            factors["total_gib"] = 2  # keep the paranoid sweep cheap
            trimmed.append(type(spec)(spec.exp_id, spec.scenario, factors))
        return trimmed, EngineOptions(noise_enabled=False)
    if experiment == "faults":
        from ..experiments import exp_faults

        specs = exp_faults.specs()
        trimmed = []
        for spec in specs:
            factors = dict(spec.factors)
            factors["total_gib"] = 2
            trimmed.append(type(spec)(spec.exp_id, spec.scenario, factors))
        return trimmed, EngineOptions(
            noise_enabled=False, fault_schedule=exp_faults.timeline_schedule()
        )
    raise ConfigError(
        f"unknown verify experiment {experiment!r} (expected one of {INVARIANT_EXPERIMENTS})"
    )


def run_invariants_suite(
    report: SuiteReport,
    level: ValidationLevel,
    experiments: tuple[str, ...] = INVARIANT_EXPERIMENTS,
    reps: int = 2,
    seed: int = 0,
    inject: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> None:
    """Paranoid campaigns over shipped specs; violations are quarantined."""
    from ..experiments.common import run_specs

    checker_inject = inject if inject in ("over-capacity", "byte-loss") else None
    for experiment in experiments:
        specs, options = _experiment_specs(experiment)
        with forced_injection(checker_inject):
            store = run_specs(
                specs,
                repetitions=reps,
                seed=seed,
                options=options,
                validation=level,
                on_violation="skip",
                progress=progress,
            )
        violations = [f for f in store.failures if f.error_type == "InvariantViolation"]
        name = f"invariants:{experiment} ({len(store)} runs at {level.name.lower()})"
        if violations:
            first = violations[0]
            report.failed.append(
                f"{name}: {len(violations)} quarantined violation(s); first: {first.message}"
            )
            if checker_inject is not None:
                report.injection_detected = True
        else:
            report.passed.append(name)


# -- replay sweep ------------------------------------------------------------------


def _replay_cases(seed: int):
    """Named engine factories replay must hold for.

    Each case returns a *fresh* engine per call and covers a distinct
    determinism hazard: noise draws (fluid), request interleaving (DES)
    and the retry/backoff/abandon paths under a mid-run target outage.
    """
    from ..calibration.plafrim import scenario1

    calib = scenario1()
    topo = calib.platform(8)

    def app():
        return single_application(topo, 4, ppn=4, total_bytes=256 * MiB)

    outage = FaultSchedule([target_outage(201, start_s=0.05, duration_s=0.3)])

    def fluid_noisy() -> object:
        engine = FluidEngine(
            calib, topo, calib.deployment(stripe_count=4), seed=seed, options=EngineOptions()
        )
        return engine.run([app()], rep=1)

    def fluid_faulted() -> object:
        engine = FluidEngine(
            calib,
            topo,
            calib.deployment(stripe_count=4, chooser="fixed:101,201,102,202"),
            seed=seed,
            options=EngineOptions(
                noise_enabled=False,
                fault_schedule=outage,
                retry=RetryPolicy(timeout_s=0.1, max_retries=8),
            ),
        )
        return engine.run([app()], rep=0)

    def des_quiet() -> object:
        engine = DESEngine(
            calib,
            topo,
            calib.deployment(stripe_count=4),
            seed=seed,
            options=EngineOptions(noise_enabled=False),
        )
        return engine.run([app()], rep=0)

    return (
        ("fluid+noise", fluid_noisy),
        ("fluid+outage+retry", fluid_faulted),
        ("des", des_quiet),
    )


def run_replay_suite(
    report: SuiteReport,
    seed: int = 0,
    runs: int = 2,
    inject: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> None:
    """Same-seed runs must be byte-identical; perturbed seeds must not be."""
    for name, factory in _replay_cases(seed):
        try:
            fingerprint = check_replay(factory, runs=runs, context=name)
        except ReplayDivergenceError as exc:
            report.failed.append(f"replay:{name}: {exc}")
            continue
        report.passed.append(f"replay:{name} (fingerprint {fingerprint[:12]})")
        if progress is not None:
            progress(f"replay:{name} ok")
    if inject == "rng-perturb":
        # The detection self-test: a *different* seed must change the
        # fingerprint.  If it does not, the fingerprint is insensitive
        # to the RNG stream and the replay check proves nothing.
        detected = False
        for (name, base_factory), (_, perturbed_factory) in zip(
            _replay_cases(seed), _replay_cases(seed + 1)
        ):
            baseline = check_replay(base_factory, runs=2, context=name)
            perturbed = check_replay(perturbed_factory, runs=2, context=f"{name}@seed+1")
            if perturbed != baseline:
                detected = True
                break
        report.injection_detected = detected


# -- entry point -------------------------------------------------------------------


def run_suite(
    suite: str = "all",
    level: ValidationLevel | str = ValidationLevel.PARANOID,
    experiments: tuple[str, ...] = INVARIANT_EXPERIMENTS,
    reps: int = 2,
    seed: int = 0,
    golden_path: Path | None = None,
    update_golden: bool = False,
    inject: str | None = None,
    progress: Callable[[str], None] | None = None,
) -> SuiteReport:
    """Run the requested verification suite(s) and return the report."""
    if suite not in SUITES:
        raise ConfigError(f"unknown suite {suite!r} (expected one of {SUITES})")
    if inject is not None and inject not in SUITE_INJECTIONS:
        raise ConfigError(
            f"unknown injection {inject!r} (expected one of {SUITE_INJECTIONS})"
        )
    level = ValidationLevel.parse(level)
    if not level.enabled:
        raise ConfigError("repro verify needs --level basic or paranoid, not off")
    report = SuiteReport(suite=suite, level=level, injection=inject)

    if suite in ("invariants", "all"):
        run_invariants_suite(
            report,
            level,
            experiments=experiments,
            reps=reps,
            seed=seed,
            inject=inject,
            progress=progress,
        )
    if suite in ("conformance", "all"):
        conf: ConformanceReport = run_conformance(
            specs=CONFORMANCE_SPECS,
            level=level,
            golden_path=golden_path,
            update_golden=update_golden,
            progress=progress,
        )
        name = f"conformance ({len(conf.cases)} cases)"
        if conf.ok:
            suffix = " [golden updated]" if conf.golden_updated else ""
            report.passed.append(name + suffix)
        else:
            for case in conf.failures:
                detail = "; ".join(case.golden_errors) or (
                    f"fluid {case.fluid_mib_s:.2f} vs DES {case.des_mib_s:.2f} MiB/s, "
                    f"rel diff {case.rel_diff:.3f} > tol {case.tolerance:.2f}"
                )
                report.failed.append(f"conformance:{case.name}: {detail}")
        if conf.missing_golden and not conf.golden_updated:
            report.passed.append(
                f"conformance: note — no golden entry for {', '.join(conf.missing_golden)}"
            )
    if suite in ("replay", "all"):
        run_replay_suite(report, seed=seed, inject=inject, progress=progress)

    return report
