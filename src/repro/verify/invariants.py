"""Runtime invariant checking shared by the fluid and DES engines.

A :class:`RuntimeChecker` rides along inside an engine's integration
loop and raises :class:`~repro.errors.InvariantViolation` the moment a
physical law breaks, instead of letting a silently-corrupted number
reach the statistics.  The checked invariants:

* **Monotone time** — segment start times never decrease (BASIC).
* **Capacity timeline** — in every segment, the summed rate through a
  resource never exceeds the capacity the solver was given for that
  instant; fault windows are included for free because the engines
  evaluate the (fault-wrapped) providers before handing capacities to
  the checker (BASIC).
* **Per-flow byte conservation** — every non-abandoned flow delivers
  exactly its declared volume; no flow over-delivers (BASIC).
* **Max-min fairness certificate** — after each solve, every flow
  saturates at least one resource or its own rate cap
  (:func:`repro.netsim.maxmin.fairness_violations`) (PARANOID).
* **Per-resource/per-target byte conservation** — the time integral of
  each resource's throughput equals the payload bytes of the flows
  routed through it, so no byte is created or dropped anywhere along
  the path (PARANOID; needs per-segment accumulation).

The checker is engine-agnostic: both engines speak to it in resource
*indices* over a list of resource ids bound once per run, with rates in
MiB/s.  ``inject`` deliberately corrupts the checker's view of the run
("over-capacity" halves the capacities it sees, "byte-loss" drops one
MiB from a target's delivered tally) — the self-test proving the
detection machinery actually fires end to end.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Iterator, Sequence

import numpy as np

from ..errors import InvariantViolation
from ..netsim.maxmin import fairness_violations
from ..telemetry.bus import get_bus
from ..units import MiB
from .level import ValidationLevel

__all__ = ["RuntimeChecker", "make_checker", "forced_injection", "INJECTION_KINDS"]

INJECTION_KINDS = ("over-capacity", "byte-loss")

# Scoped injection override consumed by make_checker(): lets the
# verification suite corrupt checkers that engines construct internally,
# without any engine-side injection plumbing.
_FORCED_INJECTION: str | None = None


@contextmanager
def forced_injection(kind: str | None) -> Iterator[None]:
    """Every checker made inside the block carries ``inject=kind``."""
    global _FORCED_INJECTION
    if kind is not None and kind not in INJECTION_KINDS:
        raise ValueError(f"unknown injection {kind!r} (expected {INJECTION_KINDS})")
    previous = _FORCED_INJECTION
    _FORCED_INJECTION = kind
    try:
        yield
    finally:
        _FORCED_INJECTION = previous

# One MiB/s of absolute slack on the capacity check: progressive filling
# guarantees usage <= capacity up to its internal epsilon, and float
# summation over a few hundred flows needs a little headroom.
_CAPACITY_RTOL = 1e-6
_CAPACITY_ATOL_MIB_S = 1e-5
_TIME_ATOL_S = 1e-9
# Engines clamp a flow's remaining bytes to zero below ~1e-3 bytes per
# completion, so per-resource integrals carry sub-byte residue per flow.
_CONSERVATION_RTOL = 1e-6


class RuntimeChecker:
    """Per-run invariant checker; raises on the first violation."""

    def __init__(
        self,
        level: ValidationLevel,
        context: str = "",
        conservation_atol_bytes: float = 64.0 * 1024.0,
        inject: str | None = None,
    ):
        if not level.enabled:
            raise ValueError("RuntimeChecker needs BASIC or PARANOID level")
        if inject is not None and inject not in INJECTION_KINDS:
            raise ValueError(f"unknown injection {inject!r} (expected {INJECTION_KINDS})")
        self.level = level
        self.context = context
        self.conservation_atol_bytes = float(conservation_atol_bytes)
        self.inject = inject
        self.segments_checked = 0
        self._rids: list[str] = []
        self._delivered: np.ndarray | None = None  # bytes integrated per resource
        self._expected: np.ndarray | None = None  # payload bytes routed per resource
        self._last_time = -math.inf

    # -- wiring ----------------------------------------------------------------

    def bind_resources(self, rids: Sequence[str]) -> None:
        """Declare the run's resource id list; indices refer into it."""
        self._rids = list(rids)
        n = len(self._rids)
        self._delivered = np.zeros(n)
        self._expected = np.zeros(n)

    def expect_bytes(self, resource_idxs: Sequence[int], nbytes: float) -> None:
        """Register a flow's volume against every resource on its route."""
        if self._expected is None:
            raise InvariantViolation(self._msg("usage", "expect_bytes before bind_resources"))
        for i in resource_idxs:
            self._expected[i] += nbytes

    def retract_bytes(self, resource_idxs: Sequence[int], nbytes: float) -> None:
        """Remove an abandoned flow's undelivered remainder from the ledger."""
        if self._expected is None:
            raise InvariantViolation(self._msg("usage", "retract_bytes before bind_resources"))
        for i in resource_idxs:
            self._expected[i] -= nbytes

    # -- per-segment checks ------------------------------------------------------

    def on_segment(
        self,
        now: float,
        dt: float,
        capacities: np.ndarray,
        memberships: Sequence[Sequence[int]],
        rates_mib_s: np.ndarray,
        flow_caps: np.ndarray | None = None,
        flow_labels: Sequence[str] | None = None,
    ) -> None:
        """Check one piecewise-constant segment after the rate solve.

        ``capacities`` must be exactly the array the solver consumed
        (noise and fault multipliers applied), ``rates_mib_s`` the rates
        it produced, ``dt`` the segment length about to be integrated.
        """
        self.segments_checked += 1
        # 1. Monotone, finite time.
        if not math.isfinite(now) or not math.isfinite(dt) or dt < 0:
            raise InvariantViolation(self._msg("time", f"non-finite segment t={now}, dt={dt}"))
        if now < self._last_time - _TIME_ATOL_S:
            raise InvariantViolation(
                self._msg("time", f"segment time went backwards: {self._last_time} -> {now}")
            )
        self._last_time = now

        caps = np.asarray(capacities, dtype=float)
        rates = np.asarray(rates_mib_s, dtype=float)
        if np.any(rates < -_CAPACITY_ATOL_MIB_S):
            worst = int(np.argmin(rates))
            raise InvariantViolation(
                self._msg("rates", f"negative rate {rates[worst]:g} MiB/s (flow {self._label(flow_labels, worst)})")
            )

        # 2. Capacity timeline: no resource above its capacity for this
        # instant (fault multipliers are already inside ``caps``).
        usage = np.zeros(caps.shape[0])
        for idxs, rate in zip(memberships, rates):
            for i in idxs:
                usage[i] += rate
        caps_seen = caps * 0.5 if self.inject == "over-capacity" else caps
        over = usage > caps_seen * (1.0 + _CAPACITY_RTOL) + _CAPACITY_ATOL_MIB_S
        if np.any(over):
            i = int(np.argmax(usage - caps_seen))
            raise InvariantViolation(
                self._msg(
                    "capacity",
                    f"resource {self._rid(i)} over capacity at t={now:g}: "
                    f"usage {usage[i]:.6f} MiB/s > capacity {caps_seen[i]:.6f} MiB/s",
                )
            )

        if self.level.paranoid:
            # 3. Max-min fairness certificate for this solve.
            bad = fairness_violations(memberships, caps, rates, flow_caps)
            if bad:
                f = bad[0]
                raise InvariantViolation(
                    self._msg(
                        "fairness",
                        f"flow {self._label(flow_labels, f)} at t={now:g} saturates no "
                        f"constraint (rate {rates[f]:.6f} MiB/s; {len(bad)} such flows)",
                    )
                )
            # 4. Accumulate the per-resource byte integral.
            if self._delivered is not None:
                scale = dt * float(MiB)
                for idxs, rate in zip(memberships, rates):
                    for i in idxs:
                        self._delivered[i] += rate * scale

    # -- end-of-run checks --------------------------------------------------------

    def flow_complete(
        self, label: str, volume_bytes: float, remaining_bytes: float, abandoned: bool
    ) -> None:
        """Per-flow byte conservation at the end of a run."""
        atol = self.conservation_atol_bytes
        if remaining_bytes < -atol:
            raise InvariantViolation(
                self._msg(
                    "conservation",
                    f"flow {label} over-delivered: {-remaining_bytes:.1f} bytes beyond "
                    f"its {volume_bytes:.0f}-byte volume",
                )
            )
        if not abandoned and remaining_bytes > atol:
            raise InvariantViolation(
                self._msg(
                    "conservation",
                    f"flow {label} finished with {remaining_bytes:.1f} of "
                    f"{volume_bytes:.0f} bytes undelivered but was not abandoned",
                )
            )

    def finish(self) -> None:
        """Per-resource (hence per-target) byte conservation (PARANOID)."""
        if self.level.paranoid and self._delivered is not None and self._expected is not None:
            delivered = self._delivered.copy()
            if self.inject == "byte-loss":
                # Drop one MiB from the busiest resource's tally: a simulated
                # silently-dropped chunk the conservation check must catch.
                delivered[int(np.argmax(delivered))] -= float(MiB)
            tol = self.conservation_atol_bytes + _CONSERVATION_RTOL * np.abs(self._expected)
            off = np.abs(delivered - self._expected) > tol
            if np.any(off):
                i = int(np.argmax(np.abs(delivered - self._expected)))
                raise InvariantViolation(
                    self._msg(
                        "conservation",
                        f"resource {self._rid(i)} moved {delivered[i]:.0f} bytes but "
                        f"{self._expected[i]:.0f} were routed through it "
                        f"(delta {delivered[i] - self._expected[i]:+.0f})",
                    )
                )
        bus = get_bus()
        if bus.enabled:
            bus.emit(
                "invariant.check",
                context=self.context,
                level=self._level_name(),
                segments=self.segments_checked,
                ok=True,
            )
            bus.metrics.counter("invariants.segments_checked").inc(self.segments_checked)

    # -- helpers ------------------------------------------------------------------

    def _rid(self, index: int) -> str:
        return self._rids[index] if 0 <= index < len(self._rids) else f"#{index}"

    @staticmethod
    def _label(labels: Sequence[str] | None, index: int) -> str:
        if labels is not None and 0 <= index < len(labels):
            return labels[index]
        return f"#{index}"

    def _level_name(self) -> str:
        return str(getattr(self.level, "name", self.level)).lower()

    def _msg(self, invariant: str, detail: str) -> str:
        where = f" [{self.context}]" if self.context else ""
        message = f"invariant '{invariant}' violated{where}: {detail}"
        # _msg is the single chokepoint every violation passes through on
        # its way into an InvariantViolation, so the failure event is
        # emitted here (the successful-run event comes from finish()).
        bus = get_bus()
        if bus.enabled:
            bus.emit(
                "invariant.check",
                context=self.context,
                level=self._level_name(),
                segments=self.segments_checked,
                ok=False,
                detail=message,
            )
            bus.metrics.counter("invariants.violations").inc()
        return message


def make_checker(
    level: ValidationLevel | str | None,
    context: str = "",
    inject: str | None = None,
) -> RuntimeChecker | None:
    """Build a checker for a run, or ``None`` when validation is off."""
    parsed = ValidationLevel.parse(level)
    if not parsed.enabled:
        return None
    effective_inject = inject if inject is not None else _FORCED_INJECTION
    return RuntimeChecker(parsed, context=context, inject=effective_inject)
