"""Validation levels: how much runtime checking a run pays for.

``OFF`` is byte-identical to the pre-guardrail engines (no checker is
even constructed).  ``BASIC`` buys the cheap always-on invariants —
monotone time, the capacity timeline, per-flow byte conservation — at a
few percent overhead.  ``PARANOID`` adds the per-segment max-min
fairness certificate and per-resource (per-target) byte conservation,
which cost one extra O(flows x resources) pass per segment; use it for
conformance campaigns and CI, not for million-run production sweeps.
"""

from __future__ import annotations

import enum

from ..errors import ConfigError

__all__ = ["ValidationLevel"]


class ValidationLevel(enum.Enum):
    """How strictly a run is checked while it executes."""

    OFF = 0
    BASIC = 1
    PARANOID = 2

    @classmethod
    def parse(cls, value: "ValidationLevel | str | None") -> "ValidationLevel":
        """Coerce a CLI/config value (``"off"``/``"basic"``/``"paranoid"``)."""
        if value is None:
            return cls.OFF
        if isinstance(value, cls):
            return value
        try:
            return cls[str(value).upper()]
        except KeyError:
            names = ", ".join(level.name.lower() for level in cls)
            raise ConfigError(
                f"unknown validation level {value!r} (expected one of: {names})"
            ) from None

    @property
    def enabled(self) -> bool:
        return self is not ValidationLevel.OFF

    @property
    def paranoid(self) -> bool:
        return self is ValidationLevel.PARANOID

    def __ge__(self, other: "ValidationLevel") -> bool:
        if isinstance(other, ValidationLevel):
            return self.value >= other.value
        return NotImplemented
