"""Deterministic-replay verification.

The reproducibility claim behind every experiment in this repo is that
a (seed, rep) pair fully determines a run: same seed, same bytes, same
timings — including under fault schedules, retry storms and noise.  The
engines implement this through the named :class:`~repro.rng.SeedTree`;
this module *proves* it per configuration by executing the same run
twice through independently-constructed engines and comparing
fingerprints of everything the run produced.

The fingerprint covers every per-application field (start/end times,
byte volumes, targets, placements), the segment count, the retry and
abandonment tallies and the full fault-event trace.  Floats enter the
canonical form via ``repr``, so replay must match to the last ulp —
"close" is a determinism bug, not a pass.
"""

from __future__ import annotations

from typing import Any, Callable

from ..engine.result import RunResult
from ..errors import ReplayDivergenceError
from ..scenario.canonical import fingerprint_of

__all__ = ["canonical_form", "result_fingerprint", "check_replay"]


def canonical_form(result: RunResult) -> dict[str, Any]:
    """A JSON-serialisable projection of everything replay must preserve."""
    return {
        "apps": [
            {
                "app_id": a.app_id,
                "start_time": repr(a.start_time),
                "end_time": repr(a.end_time),
                "volume_bytes": repr(a.volume_bytes),
                "num_nodes": a.num_nodes,
                "ppn": a.ppn,
                "stripe_count": a.stripe_count,
                "targets": list(a.targets),
                "placement": list(a.placement),
            }
            for a in result.apps
        ],
        "segments": result.segments,
        "retries": result.retries,
        "abandoned_flows": result.abandoned_flows,
        "fault_events": [
            {k: (repr(v) if isinstance(v, float) else v) for k, v in sorted(e.items())}
            for e in result.fault_events
        ],
    }


def result_fingerprint(result: RunResult) -> str:
    """A stable sha256 digest of the run's canonical form.

    Hashes through :func:`repro.scenario.canonical.fingerprint_of`, the
    same canonical-JSON convention the :class:`~repro.scenario.ScenarioSpec`
    content fingerprints use, so every digest in the system agrees on
    its serialization rules.
    """
    return fingerprint_of(canonical_form(result))


def _first_difference(a: dict[str, Any], b: dict[str, Any], prefix: str = "") -> str:
    """Human-oriented pointer at the first diverging leaf."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a or key not in b:
                return f"{prefix}{key}: present in only one run"
            if a[key] != b[key]:
                return _first_difference(a[key], b[key], f"{prefix}{key}.")
        return f"{prefix.rstrip('.')}: dicts equal (fingerprint collision?)"
    if isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            return f"{prefix.rstrip('.')}: length {len(a)} vs {len(b)}"
        for i, (x, y) in enumerate(zip(a, b)):
            if x != y:
                return _first_difference(x, y, f"{prefix}[{i}].")
        return f"{prefix.rstrip('.')}: lists equal"
    return f"{prefix.rstrip('.')}: {a!r} vs {b!r}"


def check_replay(
    factory: Callable[[], RunResult],
    runs: int = 2,
    context: str = "",
) -> str:
    """Execute ``factory`` ``runs`` times; all results must be identical.

    ``factory`` must construct a *fresh* engine per call (replay through
    a shared engine would also pass through shared mutable state, which
    is exactly what this check is meant to rule out).  Returns the
    common fingerprint; raises :class:`ReplayDivergenceError` naming the
    first diverging field otherwise.
    """
    if runs < 2:
        raise ValueError("check_replay needs at least 2 runs to compare")
    first = factory()
    reference = canonical_form(first)
    fingerprint = result_fingerprint(first)
    for i in range(1, runs):
        other = factory()
        if result_fingerprint(other) != fingerprint:
            where = _first_difference(reference, canonical_form(other))
            label = f" [{context}]" if context else ""
            raise ReplayDivergenceError(
                f"replay{label} diverged on run {i + 1}/{runs} at {where}"
            )
    return fingerprint
