#!/usr/bin/env python
"""Quickstart: mount a simulated PlaFRIM, write a file, time an IOR run.

Walks the three layers of the library in ~60 lines:

1. the functional BeeGFS (create a striped file, read it back, inspect
   where its chunks landed);
2. the calibrated performance engine (time a 32 GiB IOR write);
3. the headline question (what stripe count should the default be?).

Run:  python examples/quickstart.py
"""

from repro import (
    BeeGFS,
    BeeGFSClient,
    EngineOptions,
    FluidEngine,
    plafrim_deployment,
    scenario1,
    single_application,
)
from repro.units import GiB, MiB, format_bandwidth

# -- 1. The functional file system -------------------------------------------

fs = BeeGFS(plafrim_deployment(), seed=42)
client = BeeGFSClient(fs)
client.mkdir("/data")

with client.create("/data/hello.dat") as handle:
    handle.write(b"hello, stripes!" * 100_000)  # ~1.4 MiB, crosses chunks
    handle.seek(0)
    assert handle.read(15) == b"hello, stripes!"

inode = client.stat("/data/hello.dat")
print("file size:", inode.size, "bytes")
print("stripe targets:", inode.pattern.targets, "chunk size:", inode.pattern.chunk_size)
print("placement across servers:", fs.placement_of(inode))
print("bytes per target:", inode.pattern.bytes_per_target(inode.size))

# -- 2. Timing an IOR run on the calibrated platform ---------------------------

calib = scenario1()  # 10 GbE: the network is slower than the storage
topology = calib.platform(8)
engine = FluidEngine(
    calib,
    topology,
    calib.deployment(stripe_count=4),  # PlaFRIM's original default
    seed=0,
    options=EngineOptions(noise_enabled=False),
)
app = single_application(topology, num_nodes=8, ppn=8, total_bytes=32 * GiB)
print("\nequivalent IOR command:", app.config.ior_command(app.nprocs))

result = engine.run([app])
run = result.single
print(
    f"32 GiB N-1 write on 8 nodes x 8 ppn, stripe count 4: "
    f"{format_bandwidth(run.bandwidth_mib_s)} "
    f"(placement {run.placement_min_max}, {run.duration:.1f} s)"
)

# -- 3. The paper's question: what should the default stripe count be? ---------

print("\nstripe count sweep (noise-free means):")
for stripe_count in (1, 2, 4, 8):
    engine = FluidEngine(
        calib,
        topology,
        calib.deployment(stripe_count=stripe_count),
        seed=0,
        options=EngineOptions(noise_enabled=False),
    )
    run = engine.run([app]).single
    print(
        f"  stripe {stripe_count}: {format_bandwidth(run.bandwidth_mib_s):>14} "
        f" placement {run.placement_min_max}"
    )
print(
    "\n=> the maximum stripe count (8) is always balanced across the two"
    "\n   servers and reaches peak bandwidth every run — the paper's"
    "\n   recommendation, which PlaFRIM's administrators adopted."
)
