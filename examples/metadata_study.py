#!/usr/bin/env python
"""The metadata side: mdtest, directory layout, and interference.

The paper deliberately keeps metadata out of its measurements (one
shared file, Section III-B) and cites metadata intensity as a main
root cause of I/O interference (Section IV-D).  This example measures
both statements on the simulated deployment:

1. mdtest create rates: a shared directory pins every operation to one
   MDS; unique per-process directories spread over both and double the
   throughput;
2. interference: a victim job's file opens stretch severalfold while a
   create storm runs — but the cost to a paper-style 32 GiB bandwidth
   job stays negligible.

Run:  python examples/metadata_study.py  (~30 s)
"""

from repro.calibration import scenario2
from repro.engine.meta_engine import MDSPerformanceSpec, MetadataEngine
from repro.figures import render_table
from repro.workload.mdtest import MDTestConfig, MDTestPhase, MetadataOp

deployment = scenario2().deployment()
spec = MDSPerformanceSpec()
print(
    f"metadata model: {spec.workers} workers/MDS, "
    f"{spec.create_service_s * 1e6:.0f} us/create "
    f"(single-MDS peak {spec.peak_rate(MetadataOp.CREATE):.0f} creates/s)\n"
)

# -- 1. Directory layout: the mdtest -u effect ----------------------------------

rows = []
for mode in (MDTestPhase.SHARED_DIR, MDTestPhase.UNIQUE_DIRS):
    for nprocs in (4, 32, 128):
        engine = MetadataEngine(deployment, spec, seed=1)
        result = engine.run(MDTestConfig(150, directory_mode=mode), nprocs)
        rows.append(
            [
                mode.value,
                nprocs,
                f"{result.rate(MetadataOp.CREATE):.0f}",
                f"{result.rate(MetadataOp.STAT):.0f}",
                f"{result.busiest_mds_share() * 100:.0f}%",
            ]
        )
print(render_table(
    ["layout", "procs", "creates/s", "stats/s", "busiest MDS"],
    rows,
    "mdtest on two MDSes (150 files/proc):",
))
print(
    "=> a shared directory lives on ONE metadata server (BeeGFS assigns\n"
    "   each directory to a single MDS), so it cannot scale past one\n"
    "   server's rate; unique directories double throughput.\n"
)

# -- 2. Interference: a victim's opens inside a create storm --------------------

victim = ("victim", MDTestConfig(1, directory_mode=MDTestPhase.UNIQUE_DIRS), 64, 0.02)
rows = []
for storm_procs in (0, 64, 256):
    groups = [victim]
    if storm_procs:
        groups = [victim, ("storm", MDTestConfig(300), storm_procs)]
    engine = MetadataEngine(deployment, spec, seed=2)
    finished = engine.run_concurrent(groups, op=MetadataOp.CREATE)
    rows.append([storm_procs, f"{finished['victim'] * 1000:.1f}"])
print(render_table(
    ["storm procs", "victim's 64 opens (ms)"],
    rows,
    "A job's open phase while a metadata storm runs:",
))
print(
    "=> interference flows through the metadata path. A 32 GiB write with\n"
    "   a single shared file barely notices (milliseconds against seconds)\n"
    "   — which is exactly why the paper's N-1 methodology was safe, and\n"
    "   why its Lesson 7 ('sharing OSTs costs nothing') coexists with\n"
    "   real-world interference reports."
)
