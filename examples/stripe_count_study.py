#!/usr/bin/env python
"""A miniature of the paper's core experiment (Figures 6 and 8).

Runs the stripe-count sweep in scenario 1 under the full Section III-C
protocol (randomized blocks, simulated waits, fresh file system and
noise per repetition), then reproduces the paper's key analysis steps:

* the per-stripe-count bandwidth clouds and their bi-modality,
* the regrouping by (min, max) placement that explains the modes,
* the balance law BW ~ B_eff * k / max(a, b),
* the default-change recommendation with a bootstrap CI.

Run:  python examples/stripe_count_study.py  (~20 s)
"""

from repro.analysis.netmodel import balance_bandwidth_law
from repro.calibration import scenario1
from repro.experiments.common import run_specs
from repro.figures import box_panel, render_table
from repro.methodology.plan import ExperimentSpec
from repro.stats import bimodality, boxplot_stats, bootstrap_ratio_ci, describe

REPETITIONS = 30  # the paper uses 100; 30 keeps this example snappy
NUM_NODES = 8
PPN = 8

specs = [
    ExperimentSpec(
        "stripe-study",
        "scenario1",
        {"stripe_count": k, "num_nodes": NUM_NODES, "ppn": PPN, "total_gib": 32},
    )
    for k in range(1, 9)
]
print(f"running {len(specs)} configurations x {REPETITIONS} repetitions "
      "under the randomized-block protocol...")
records = run_specs(specs, repetitions=REPETITIONS, seed=7)

# -- per-stripe-count summary ---------------------------------------------------

rows = []
for k, group in sorted(records.group_by_factor("stripe_count").items()):
    values = group.bandwidths()
    s = describe(values)
    report = bimodality.is_bimodal(values)
    modes = (
        f"bimodal @ {report.mixture.means[0]:.0f}/{report.mixture.means[1]:.0f}"
        if report.bimodal
        else "unimodal"
    )
    placements = " ".join(
        f"({lo},{hi})" for lo, hi in sorted({r.placement for r in group})
    )
    rows.append([k, f"{s.mean:.0f}", f"{s.std:.0f}", modes, placements])
print()
print(render_table(
    ["stripe", "mean MiB/s", "std", "modality", "placements seen"],
    rows,
    "Figure 6a reproduction: never summarise by the mean alone (Lesson 5)",
))

# -- regroup by placement: the explanation (Figure 8) ---------------------------

boxes = {
    f"({lo},{hi})": boxplot_stats(group.bandwidths())
    for (lo, hi), group in sorted(records.group_by_placement().items())
}
print()
print(box_panel(boxes, "Figure 8 reproduction: bandwidth follows placement balance"))

per_server = scenario1().per_server_network_mib_s
law_rows = [
    [
        f"({lo},{hi})",
        f"{group.bandwidths().mean():.0f}",
        f"{balance_bandwidth_law((lo, hi), per_server):.0f}",
    ]
    for (lo, hi), group in sorted(records.group_by_placement().items())
]
print()
print(render_table(
    ["placement", "measured mean", "law: B*k/max(a,b)"],
    law_rows,
    "Lesson 4: the balance law predicts every placement's bandwidth",
))

# -- the recommendation ---------------------------------------------------------

gain, low, high = bootstrap_ratio_ci(
    records.filter(stripe_count=8).bandwidths(),
    records.filter(stripe_count=4).bandwidths(),
)
print(
    f"\ndefault stripe count 8 vs 4: x{gain:.2f} "
    f"(95% bootstrap CI x{low:.2f}..x{high:.2f})"
    "\n=> changing the default transparently gains >=40%, the paper's estimate."
)
