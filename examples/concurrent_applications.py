#!/usr/bin/env python
"""The Section IV-D study: does sharing storage targets hurt?

Reproduces the paper's concurrency analysis in miniature:

* 2-4 identical IOR jobs on disjoint node sets (scenario 2), their
  individual bandwidths and the Equation-1 aggregate vs scaled
  single-application baselines (Figure 12);
* the shared-vs-distinct OST comparison with the paper's statistical
  procedure — KS normality, then Welch's t-test (Figure 13).

Run:  python examples/concurrent_applications.py  (~20 s)
"""

import numpy as np

from repro import EngineOptions, FluidEngine, scenario2, single_application
from repro.figures import render_table
from repro.stats import ks_normality, welch_ttest
from repro.workload import concurrent_applications

REPS = 40
calib = scenario2()  # storage-bound: the scenario where sharing could hurt
topology = calib.platform(32)

# -- Figure 12 in miniature: aggregate vs scaled baselines ----------------------

rows = []
for num_apps in (1, 2, 4):
    stripe = 8  # everyone on every target: maximal sharing
    engine = FluidEngine(calib, topology, calib.deployment(stripe_count=stripe), seed=1)
    aggregates, individuals = [], []
    for rep in range(REPS // 2):
        if num_apps == 1:
            apps = [single_application(topology, 8 * 2, ppn=8)]  # scaled baseline
        else:
            apps = concurrent_applications(topology, num_apps, nodes_per_app=8)
        result = engine.run(apps, rep=rep)
        aggregates.append(result.aggregate_bandwidth_mib_s)
        individuals.extend(a.bandwidth_mib_s for a in result.apps)
    rows.append(
        [
            num_apps,
            f"{np.mean(individuals):.0f}",
            f"{np.mean(aggregates):.0f}",
        ]
    )
print(render_table(
    ["apps", "mean individual MiB/s", "mean aggregate (Eq. 1)"],
    rows,
    "Figure 12 in miniature (stripe 8, all targets shared by everyone):",
))
print("=> individual bandwidth divides between apps; the aggregate holds.\n")

# -- Figure 13: shared vs distinct targets, the paper's t-test ------------------

engine = FluidEngine(
    calib,
    topology,
    calib.deployment(stripe_count=4),
    seed=2,
    options=EngineOptions(interleaved_creations=(0, 1, 2)),
)
# One sample per run (the two apps of a run share its system state,
# so the run is the independent unit for the t-test).
shared_bw, distinct_bw = [], []
for rep in range(REPS * 2):
    result = engine.run(concurrent_applications(topology, 2, nodes_per_app=8), rep=rep)
    overlap = len(result.shared_targets())
    assert overlap in (0, 4)  # round-robin windows: all or nothing
    bucket = shared_bw if overlap == 4 else distinct_bw
    bucket.append(np.mean([a.bandwidth_mib_s for a in result.apps]))

print(f"runs sharing all 4 targets: {len(shared_bw)}, sharing none: {len(distinct_bw)}")
print(f"  KS normality p (shared):   {ks_normality(shared_bw).pvalue:.3f}")
print(f"  KS normality p (distinct): {ks_normality(distinct_bw).pvalue:.3f}")
welch = welch_ttest(shared_bw, distinct_bw)
print(f"  Welch two-sample t-test:   p = {welch.pvalue:.4f}  ({welch.detail})")
if not welch.rejects_at(0.05):
    print(
        "\n=> cannot reject equal means (the paper found p = 0.9031):"
        "\n   sharing OSTs does not significantly impact I/O performance"
        "\n   — the slow-down comes from sharing bandwidth, not targets."
    )
else:  # pragma: no cover - statistically rare
    print("\n=> unexpected: the groups differ in this sample; rerun with another seed.")
