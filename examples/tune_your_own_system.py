#!/usr/bin/env python
"""Apply the paper's methodology to a *different* (hypothetical) system.

The paper's Lesson 2: before evaluating anything else, find the node
count that saturates your PFS — otherwise the effects of parameters
like the stripe count stay hidden (their explanation for Chowdhury et
al.'s contrary conclusions).  This example walks that methodology on a
custom platform: four storage servers with two targets each behind a
25 GbE fabric, built from the same model components as PlaFRIM.

Run:  python examples/tune_your_own_system.py  (~15 s)
"""

from dataclasses import replace

from repro.beegfs.filesystem import BeeGFSDeploymentSpec
from repro.beegfs.meta import DirectoryConfig
from repro.calibration import scenario1
from repro.engine import EngineOptions, FluidEngine
from repro.figures import render_table
from repro.storage import ServerIngestSpec, StoragePoolSpec
from repro.storage.san import SanRampSpec
from repro.topology.builders import NetworkSpec, PlatformSpec, build_platform
from repro.workload import single_application

# -- 1. Describe the hypothetical system ---------------------------------------

network = NetworkSpec(name="eth25", link_gbit_s=25.0, latency_s=20e-6)
platform = build_platform(
    PlatformSpec(name="mycluster", network=network, num_compute_nodes=32, num_storage_hosts=4)
)
deployment = BeeGFSDeploymentSpec(
    servers=(
        ("storage1", (101, 102)),
        ("storage2", (201, 202)),
        ("storage3", (301, 302)),
        ("storage4", (401, 402)),
    ),
    default_config=DirectoryConfig(stripe_count=2),  # a cautious default
    default_chooser="random",  # the BeeGFS default heuristic
    keep_data=False,
)

# Reuse PlaFRIM's storage/client models, swap the fabric-dependent parts.
calibration = replace(
    scenario1(),
    name="mycluster",
    description="hypothetical 4-server cluster on 25 GbE",
    network=network,
    ingest=ServerIngestSpec(link_mib_s=network.link_mib_s, protocol_efficiency=0.92),
    pool=StoragePoolSpec(per_target_mib_s=1764.0, scaling=(1.0, 0.92)),
    san=SanRampSpec(base_mib_s=14000.0, depth_slow=400.0),
)


def mean_bw(stripe_count: int, num_nodes: int, chooser: str | None = None, reps: int = 8) -> float:
    spec = replace(
        deployment,
        default_config=DirectoryConfig(stripe_count=stripe_count),
        default_chooser=chooser or deployment.default_chooser,
    )
    engine = FluidEngine(calibration, platform, spec, seed=3, options=EngineOptions())
    app = single_application(platform, num_nodes, ppn=8)
    runs = [engine.run([app], rep=r).single.bandwidth_mib_s for r in range(reps)]
    return sum(runs) / len(runs)


# -- 2. Lesson 2: find the node plateau first -----------------------------------

node_rows = []
for n in (1, 2, 4, 8, 16, 32):
    node_rows.append([n, f"{mean_bw(2, n):.0f}"])
print(render_table(["nodes", "mean MiB/s (stripe 2)"], node_rows,
                   "Step 1 (Lesson 2): node scaling with the current default"))
saturating_nodes = 16
print(f"-> evaluating stripe counts at {saturating_nodes} nodes\n")

# -- 3. Now sweep the stripe count at saturation --------------------------------

stripe_rows = []
for k in (1, 2, 4, 8):
    stripe_rows.append(
        [k, f"{mean_bw(k, saturating_nodes):.0f}", f"{mean_bw(k, saturating_nodes, 'balanced'):.0f}"]
    )
print(render_table(
    ["stripe", "random chooser", "balanced chooser"],
    stripe_rows,
    "Step 2: stripe count x chooser at the plateau",
))
best = mean_bw(8, saturating_nodes)
default = mean_bw(2, saturating_nodes)
print(
    f"\n=> maximum stripe count gains x{best / default:.2f} over this system's"
    "\n   cautious default — the paper's recommendation generalises: use all"
    "\n   targets, and prefer a server-balanced selection heuristic."
)
