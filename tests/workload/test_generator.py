"""Workload builders for the paper's scenarios."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.topology.builders import plafrim_ethernet
from repro.units import GiB
from repro.workload.generator import concurrent_applications, single_application


@pytest.fixture(scope="module")
def topo():
    return plafrim_ethernet(32)


class TestSingleApplication:
    def test_paper_convention(self, topo):
        app = single_application(topo, 8, ppn=8)
        assert app.num_nodes == 8
        assert app.nprocs == 64
        assert app.total_bytes == 32 * GiB
        assert app.config.block_size == 512 * 1024**2  # 512 MiB each

    def test_custom_size(self, topo):
        app = single_application(topo, 4, ppn=8, total_bytes=16 * GiB)
        assert app.total_bytes == 16 * GiB


class TestConcurrentApplications:
    def test_disjoint_node_sets(self, topo):
        apps = concurrent_applications(topo, 4, nodes_per_app=8)
        assert len(apps) == 4
        all_nodes = [n for a in apps for n in a.nodes]
        assert len(all_nodes) == len(set(all_nodes)) == 32

    def test_each_app_full_volume(self, topo):
        """Section IV-D: every concurrent app writes the full 32 GiB."""
        for app in concurrent_applications(topo, 3):
            assert app.total_bytes == 32 * GiB

    def test_unique_ids(self, topo):
        ids = {a.app_id for a in concurrent_applications(topo, 4)}
        assert len(ids) == 4

    def test_simultaneous_start_by_default(self, topo):
        assert all(a.start_time == 0.0 for a in concurrent_applications(topo, 2))

    def test_jitter(self, topo):
        rng = np.random.default_rng(3)
        apps = concurrent_applications(topo, 3, start_jitter_s=5.0, rng=rng)
        assert all(0 <= a.start_time <= 5.0 for a in apps)
        assert len({a.start_time for a in apps}) > 1

    def test_jitter_requires_rng(self, topo):
        with pytest.raises(WorkloadError):
            concurrent_applications(topo, 2, start_jitter_s=1.0)

    def test_too_many_apps(self, topo):
        with pytest.raises(WorkloadError):
            concurrent_applications(topo, 5, nodes_per_app=8)  # 40 > 32 nodes
