"""mdtest workload geometry."""

import pytest

from repro.errors import WorkloadError
from repro.workload.mdtest import MDTestConfig, MDTestPhase, MetadataOp


class TestConfig:
    def test_totals(self):
        config = MDTestConfig(files_per_process=100)
        assert config.total_files(8) == 800
        assert config.total_ops(8) == 2400  # create+stat+unlink

    def test_validation(self):
        with pytest.raises(WorkloadError):
            MDTestConfig(files_per_process=0)
        with pytest.raises(WorkloadError):
            MDTestConfig(files_per_process=1, ops=())
        with pytest.raises(WorkloadError):
            MDTestConfig(files_per_process=1, ops=(MetadataOp.CREATE, MetadataOp.CREATE))

    def test_shared_dir_paths(self):
        config = MDTestConfig(10, directory_mode=MDTestPhase.SHARED_DIR)
        assert config.directory_of(3) == "/mdtest/shared"
        assert config.directory_of(4) == config.directory_of(5)
        assert config.file_path(3, 7).startswith("/mdtest/shared/")

    def test_unique_dir_paths(self):
        config = MDTestConfig(10, directory_mode=MDTestPhase.UNIQUE_DIRS)
        assert config.directory_of(3) != config.directory_of(4)
        assert config.file_path(3, 7).startswith(config.directory_of(3))

    def test_paths_unique_per_file(self):
        config = MDTestConfig(5)
        paths = {config.file_path(r, i) for r in range(4) for i in range(5)}
        assert len(paths) == 20

    def test_command_echo(self):
        config = MDTestConfig(100, directory_mode=MDTestPhase.UNIQUE_DIRS)
        cmd = config.mdtest_command(16)
        assert "mdtest" in cmd and "-n 100" in cmd and "-u" in cmd
        assert "-u" not in MDTestConfig(100).mdtest_command(16)
