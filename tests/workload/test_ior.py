"""The functional IOR driver against the real data plane."""

import pytest

from repro.beegfs.filesystem import BeeGFS, plafrim_deployment
from repro.errors import WorkloadError
from repro.topology.builders import plafrim_ethernet
from repro.units import KiB, MiB
from repro.workload.application import Application
from repro.workload.ior import IORDriver
from repro.workload.patterns import AccessPattern, IORConfig


def small_app(pattern=AccessPattern.N1_CONTIGUOUS, nodes=2, ppn=2, block=2 * MiB):
    return Application(
        app_id="ior-test",
        nodes=tuple(f"bora{i + 1:03d}" for i in range(nodes)),
        ppn=ppn,
        config=IORConfig(block_size=block, transfer_size=MiB, pattern=pattern),
    )


class TestWritePhase:
    def test_shared_file_totals(self):
        fs = BeeGFS(plafrim_deployment(), seed=1)
        report = IORDriver(fs).run_write_phase(small_app())
        assert report.total_bytes == 4 * 2 * MiB
        assert sum(report.bytes_per_target.values()) == report.total_bytes
        assert fs.namespace.file("/bench/ior-test.dat").size == report.total_bytes

    def test_verification_roundtrip(self):
        fs = BeeGFS(plafrim_deployment(), seed=1)
        IORDriver(fs, verify=True).run_write_phase(small_app())

    def test_verify_requires_data_mode(self):
        fs = BeeGFS(plafrim_deployment(keep_data=False), seed=1)
        with pytest.raises(WorkloadError):
            IORDriver(fs, verify=True).run_write_phase(small_app())

    def test_nn_creates_file_per_process(self):
        fs = BeeGFS(plafrim_deployment(), seed=1)
        app = small_app(pattern=AccessPattern.NN)
        report = IORDriver(fs).run_write_phase(app)
        assert len(report.files) == app.nprocs
        for path in report.files:
            assert fs.namespace.file(path).size == app.config.bytes_per_process

    def test_strided_same_totals_as_contiguous(self):
        fs1 = BeeGFS(plafrim_deployment(), seed=1)
        fs2 = BeeGFS(plafrim_deployment(), seed=1)
        contiguous = IORDriver(fs1).run_write_phase(small_app())
        strided = IORDriver(fs2).run_write_phase(small_app(pattern=AccessPattern.N1_STRIDED))
        assert contiguous.total_bytes == strided.total_bytes
        assert contiguous.bytes_per_target == strided.bytes_per_target

    def test_existing_file_rejected(self):
        fs = BeeGFS(plafrim_deployment(), seed=1)
        driver = IORDriver(fs)
        driver.run_write_phase(small_app())
        with pytest.raises(WorkloadError):
            driver.run_write_phase(small_app())

    def test_size_only_mode(self):
        fs = BeeGFS(plafrim_deployment(keep_data=False), seed=1)
        report = IORDriver(fs).run_write_phase(small_app())
        assert report.total_mib == pytest.approx(8.0)

    def test_placement_report(self):
        fs = BeeGFS(plafrim_deployment(), seed=1)
        report = IORDriver(fs).run_write_phase(small_app())
        placement = report.placement(fs)
        assert sum(placement.values()) == report.total_bytes
        assert set(placement) <= {"storage1", "storage2"}

    def test_bytes_per_target_match_stripe_math(self):
        fs = BeeGFS(plafrim_deployment(), seed=1)
        app = small_app(nodes=1, ppn=1, block=5 * 512 * KiB + 512 * KiB * 3)
        # block must be multiple of transfer: use 4 MiB instead
        app = small_app(nodes=1, ppn=1, block=4 * MiB)
        report = IORDriver(fs).run_write_phase(app)
        inode = fs.namespace.file(app.file_path())
        assert report.bytes_per_target == {
            t: n for t, n in inode.pattern.bytes_per_target(4 * MiB).items() if n
        }


class TestReadPhase:
    def test_read_after_write_verifies(self):
        fs = BeeGFS(plafrim_deployment(), seed=1)
        driver = IORDriver(fs, verify=True)
        app = small_app()
        driver.run_write_phase(app)
        report = driver.run_read_phase(app)
        assert report.total_bytes == app.total_bytes
        assert sum(report.bytes_per_target.values()) == app.total_bytes

    def test_read_missing_file_fails(self):
        from repro.errors import NoSuchEntityError

        fs = BeeGFS(plafrim_deployment(), seed=1)
        with pytest.raises(NoSuchEntityError):
            IORDriver(fs).run_read_phase(small_app())

    def test_read_detects_corruption(self):
        fs = BeeGFS(plafrim_deployment(), seed=1)
        driver = IORDriver(fs, verify=True)
        app = small_app(nodes=1, ppn=1, block=MiB)
        driver.run_write_phase(app)
        # Corrupt one byte through the data plane.
        inode = fs.namespace.file(app.file_path())
        fs.write_extents(inode, 600 * 1024, b"X", 1)
        with pytest.raises(WorkloadError):
            driver.run_read_phase(app)

    def test_nn_read(self):
        fs = BeeGFS(plafrim_deployment(), seed=1)
        driver = IORDriver(fs, verify=True)
        app = small_app(pattern=AccessPattern.NN)
        driver.run_write_phase(app)
        report = driver.run_read_phase(app)
        assert len(report.files) == app.nprocs
