"""Application model and node allocation."""

import pytest

from repro.errors import WorkloadError
from repro.topology.builders import plafrim_ethernet
from repro.units import GiB, MiB
from repro.workload.application import Application, allocate_nodes
from repro.workload.patterns import AccessPattern, IORConfig


def make_app(**kwargs):
    defaults = dict(
        app_id="app0",
        nodes=("bora001", "bora002"),
        ppn=8,
        config=IORConfig.for_total_size(32 * GiB, 16),
    )
    defaults.update(kwargs)
    return Application(**defaults)


class TestBasics:
    def test_derived_sizes(self):
        app = make_app()
        assert app.num_nodes == 2
        assert app.nprocs == 16
        assert app.total_bytes == 32 * GiB

    def test_rank_layout_is_block(self):
        app = make_app()
        assert list(app.ranks_of_node("bora001")) == list(range(8))
        assert list(app.ranks_of_node("bora002")) == list(range(8, 16))
        assert app.node_of_rank(0) == "bora001"
        assert app.node_of_rank(15) == "bora002"

    def test_rank_errors(self):
        app = make_app()
        with pytest.raises(WorkloadError):
            app.ranks_of_node("ghost")
        with pytest.raises(WorkloadError):
            app.node_of_rank(16)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            make_app(nodes=())
        with pytest.raises(WorkloadError):
            make_app(nodes=("a", "a"))
        with pytest.raises(WorkloadError):
            make_app(ppn=0)
        with pytest.raises(WorkloadError):
            make_app(start_time=-1)
        with pytest.raises(WorkloadError):
            make_app(directory="relative")

    def test_delayed(self):
        app = make_app(start_time=1.0)
        assert app.delayed(2.5).start_time == 3.5


class TestFilePaths:
    def test_shared_file(self):
        app = make_app()
        assert app.file_path() == "/bench/app0.dat"
        assert app.file_paths() == ["/bench/app0.dat"]

    def test_nn_files(self):
        config = IORConfig(block_size=MiB, pattern=AccessPattern.NN)
        app = make_app(config=config)
        assert app.file_path(3) == "/bench/app0.00003.dat"
        assert len(app.file_paths()) == 16
        with pytest.raises(WorkloadError):
            app.file_path()

    def test_rank_bounds_checked(self):
        app = make_app()
        with pytest.raises(WorkloadError):
            app.file_path(99)


class TestAllocateNodes:
    def test_first_fit(self):
        topo = plafrim_ethernet(8)
        assert allocate_nodes(topo, 3) == ("bora001", "bora002", "bora003")

    def test_exclusion(self):
        topo = plafrim_ethernet(8)
        first = allocate_nodes(topo, 4)
        second = allocate_nodes(topo, 4, exclude=first)
        assert set(first).isdisjoint(second)

    def test_exhaustion(self):
        topo = plafrim_ethernet(4)
        with pytest.raises(WorkloadError):
            allocate_nodes(topo, 5)
