"""IOR workload geometry: regions, transfers, coverage properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.units import GiB, KiB, MiB
from repro.workload.patterns import AccessPattern, IORConfig, Region


class TestValidation:
    def test_block_multiple_of_transfer(self):
        with pytest.raises(WorkloadError):
            IORConfig(block_size=MiB + 1, transfer_size=MiB)

    def test_positive_sizes(self):
        with pytest.raises(WorkloadError):
            IORConfig(block_size=0)
        with pytest.raises(WorkloadError):
            IORConfig(block_size=MiB, transfer_size=0)
        with pytest.raises(WorkloadError):
            IORConfig(block_size=MiB, segments=0)

    def test_unknown_api(self):
        with pytest.raises(WorkloadError):
            IORConfig(block_size=MiB, api="HDF5")

    def test_region_validation(self):
        with pytest.raises(WorkloadError):
            Region(-1, 10)
        with pytest.raises(WorkloadError):
            Region(0, 0)


class TestForTotalSize:
    def test_papers_examples(self):
        """32 GiB over 8 procs -> 4 GiB blocks; over 64 -> 512 MiB."""
        assert IORConfig.for_total_size(32 * GiB, 8).block_size == 4 * GiB
        assert IORConfig.for_total_size(32 * GiB, 64).block_size == 512 * MiB

    def test_rounds_down_to_transfer(self):
        config = IORConfig.for_total_size(32 * GiB, 24)
        assert config.block_size % MiB == 0
        assert config.total_bytes(24) <= 32 * GiB

    def test_too_small_rejected(self):
        with pytest.raises(WorkloadError):
            IORConfig.for_total_size(KiB, 8, transfer_size=MiB)


class TestLayouts:
    def test_n1_contiguous_offsets(self):
        config = IORConfig(block_size=4 * MiB, pattern=AccessPattern.N1_CONTIGUOUS)
        regions = list(config.regions(rank=2, nprocs=4))
        assert regions == [Region(8 * MiB, 4 * MiB)]

    def test_n1_contiguous_with_segments(self):
        config = IORConfig(block_size=2 * MiB, segments=2)
        regions = list(config.regions(rank=1, nprocs=2))
        assert regions == [Region(2 * MiB, 2 * MiB), Region(6 * MiB, 2 * MiB)]

    def test_nn_offsets_are_file_local(self):
        config = IORConfig(block_size=MiB, segments=3, pattern=AccessPattern.NN)
        regions = list(config.regions(rank=5, nprocs=8))
        assert [r.offset for r in regions] == [0, MiB, 2 * MiB]

    def test_strided_interleaves_by_transfer(self):
        config = IORConfig(block_size=2 * MiB, transfer_size=MiB, pattern=AccessPattern.N1_STRIDED)
        regions = list(config.regions(rank=1, nprocs=2))
        assert [r.offset for r in regions] == [MiB, 3 * MiB]

    def test_shared_file_flag(self):
        assert AccessPattern.N1_CONTIGUOUS.shared_file
        assert AccessPattern.N1_STRIDED.shared_file
        assert not AccessPattern.NN.shared_file

    def test_bad_rank(self):
        config = IORConfig(block_size=MiB)
        with pytest.raises(WorkloadError):
            list(config.regions(rank=4, nprocs=4))


@st.composite
def geometry(draw):
    transfer = draw(st.sampled_from([256 * KiB, 512 * KiB, MiB]))
    blocks = draw(st.integers(1, 8))
    segments = draw(st.integers(1, 3))
    nprocs = draw(st.integers(1, 8))
    pattern = draw(st.sampled_from(list(AccessPattern)))
    return IORConfig(
        block_size=blocks * transfer,
        transfer_size=transfer,
        segments=segments,
        pattern=pattern,
    ), nprocs


class TestCoverageProperties:
    @given(geometry())
    @settings(max_examples=80, deadline=None)
    def test_shared_file_exactly_partitioned(self, geo):
        """All ranks' regions tile the shared file with no gaps/overlap."""
        config, nprocs = geo
        if config.pattern is AccessPattern.NN:
            return
        covered = []
        for rank in range(nprocs):
            covered.extend((r.offset, r.end) for r in config.regions(rank, nprocs))
        covered.sort()
        assert covered[0][0] == 0
        for (a_start, a_end), (b_start, _) in zip(covered, covered[1:]):
            assert a_end == b_start, "gap or overlap in shared-file coverage"
        assert covered[-1][1] == config.file_size(nprocs)

    @given(geometry())
    @settings(max_examples=80, deadline=None)
    def test_transfers_tile_regions(self, geo):
        config, nprocs = geo
        for rank in range(min(nprocs, 3)):
            transfers = list(config.transfers(rank, nprocs))
            assert all(t.length <= config.transfer_size for t in transfers)
            assert sum(t.length for t in transfers) == config.bytes_per_process

    @given(geometry())
    @settings(max_examples=40, deadline=None)
    def test_total_volume_invariant(self, geo):
        config, nprocs = geo
        assert config.total_bytes(nprocs) == nprocs * config.block_size * config.segments


class TestCommandEcho:
    def test_ior_command_posix_shared(self):
        config = IORConfig(block_size=4 * GiB, transfer_size=MiB)
        cmd = config.ior_command(8)
        assert "mpirun -n 8" in cmd
        assert "-a POSIX" in cmd and "-t 1MiB" in cmd and "-b 4GiB" in cmd
        assert "-F" not in cmd

    def test_ior_command_nn(self):
        config = IORConfig(block_size=MiB, pattern=AccessPattern.NN)
        assert "-F" in config.ior_command(4)


class TestPatternByName:
    def test_every_pattern_mapped(self):
        from repro.workload.patterns import PATTERNS_BY_NAME, pattern_by_name

        for pattern in AccessPattern:
            assert PATTERNS_BY_NAME[pattern.value] is pattern
            assert pattern_by_name(pattern.value) is pattern

    def test_unknown_name_lists_valid_ones(self):
        from repro.workload.patterns import pattern_by_name

        with pytest.raises(WorkloadError) as excinfo:
            pattern_by_name("zigzag")
        message = str(excinfo.value)
        for pattern in AccessPattern:
            assert pattern.value in message
