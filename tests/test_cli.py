"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(["run", "fig6", "--reps", "5", "--seed", "3"])
        assert args.exp_id == "fig6"
        assert args.reps == 5
        assert args.seed == 3


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "fig13" in out

    def test_list_shows_compiled_sweep_sizes(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        fig6_line = next(line for line in out.splitlines() if line.startswith("fig6"))
        # 2 scenarios x 8 stripe counts x 100 default repetitions.
        assert "1600" in fig6_line
        fig3_line = next(line for line in out.splitlines() if line.startswith("fig3"))
        assert " - " in fig3_line

    def test_run_cache_flags(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["run", "fig9", "--quiet", "--cache-dir", str(cache)]) == 0
        err = capsys.readouterr().err
        assert "2 miss(es)" in err
        assert main(["run", "fig9", "--quiet", "--cache-dir", str(cache)]) == 0
        err = capsys.readouterr().err
        assert "2 hit(s)" in err and "0 miss(es)" in err

    def test_run_no_cache(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        assert main(["run", "fig9", "--quiet", "--no-cache", "--cache-dir", str(cache)]) == 0
        err = capsys.readouterr().err
        assert "2 uncached" in err
        assert not cache.exists()

    def test_calibration(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "scenario1" in out and "anchors" in out
        assert "880.0 MiB/s" in out

    def test_placements(self, capsys):
        assert main(["placements", "--stripe-count", "4", "--samples", "40"]) == 0
        out = capsys.readouterr().out
        assert "roundrobin" in out
        assert "(1,3): 100%" in out
        assert "hypergeometric" in out

    def test_run_analytic_experiment(self, capsys):
        assert main(["run", "fig3", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "min(N, M)" in out

    def test_run_with_csv_output(self, tmp_path, capsys):
        assert main(["run", "fig4", "--reps", "2", "--quiet", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig4.csv").exists()
        out = capsys.readouterr().out
        assert "records written" in out

    def test_run_unknown_experiment_structured_error(self, capsys):
        assert main(["run", "fig99", "--quiet"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("error[ExperimentError]:")
        assert "fig99" in err
        assert "\n" not in err.rstrip("\n")  # one line, no traceback

    def test_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


class TestSystemCommands:
    def test_system_export_and_recommend(self, tmp_path, capsys):
        path = tmp_path / "sys.json"
        assert main(["system", "export", str(path), "--scenario", "scenario2"]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["recommend", "--system", str(path), "--nodes", "2", "--ppn", "4"]) == 0
        out = capsys.readouterr().out
        assert "recommendation: stripe count 8" in out
        assert "scenario2" in out

    def test_recommend_builtin_scenario(self, capsys):
        assert main(["recommend", "--scenario", "scenario1", "--nodes", "2", "--ppn", "2"]) == 0
        out = capsys.readouterr().out
        assert "rationale" in out


class TestExplainCommand:
    def test_explain_prints_attribution(self, capsys):
        assert main([
            "explain", "--scenario", "scenario2", "--nodes", "8",
            "--stripe-count", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "Bottleneck attribution" in out
        assert "by class:" in out
        assert "MiB/s" in out


class TestResilienceFlags:
    def test_parser_accepts_resilience_flags(self, tmp_path):
        args = build_parser().parse_args(
            [
                "run", "faults",
                "--on-error", "skip",
                "--checkpoint", str(tmp_path / "c.json"),
                "--resume",
            ]
        )
        assert args.on_error == "skip"
        assert args.resume is True

    def test_on_error_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "faults", "--on-error", "retry"])

    def test_resume_requires_checkpoint(self, capsys):
        assert main(["run", "faults", "--resume", "--quiet"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_per_experiment_checkpoint_names(self, tmp_path):
        from repro.cli import _checkpoint_path_for

        base = tmp_path / "campaign.json"
        assert _checkpoint_path_for(None, "fig4", multiple=True) is None
        assert _checkpoint_path_for(base, "fig4", multiple=False) == base
        assert _checkpoint_path_for(base, "fig4", multiple=True).name == "campaign.fig4.json"

    def test_quarantined_runs_summarised_and_nonzero_exit(self, capsys, monkeypatch):
        from repro.experiments.common import ExperimentOutput
        from repro.experiments.registry import EXPERIMENTS, ExperimentInfo
        from repro.methodology.records import FailedRunRecord, RecordStore

        def fake_run(repetitions=1, seed=0, progress=None):
            records = RecordStore()
            records.failures.append(
                FailedRunRecord(
                    exp_id="fake",
                    scenario="s1",
                    rep=3,
                    factors={},
                    error_type="RuntimeError",
                    message="boom",
                )
            )
            return ExperimentOutput("fake", "t", records, figure="fig")

        monkeypatch.setitem(
            EXPERIMENTS, "fake", ExperimentInfo("fake", "t", "ref", fake_run, 1)
        )
        assert main(["run", "fake", "--quiet", "--on-error", "skip"]) == 1
        err = capsys.readouterr().err
        assert "quarantined" in err
        assert "RuntimeError: boom" in err
        assert "--resume" in err


class TestVerifyCommand:
    def test_parser_accepts_verify_flags(self, tmp_path):
        args = build_parser().parse_args(
            [
                "verify", "--suite", "conformance", "--level", "basic",
                "--golden", str(tmp_path / "g.json"), "--update-golden",
                "--inject", "byte-loss",
            ]
        )
        assert args.suite == "conformance"
        assert args.level == "basic"
        assert args.update_golden is True
        assert args.inject == "byte-loss"

    def test_run_accepts_verify_level(self):
        args = build_parser().parse_args(["run", "fig6", "--verify", "paranoid"])
        assert args.verify == "paranoid"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig6", "--verify", "extreme"])

    def test_verify_rejects_unknown_suite(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify", "--suite", "vibes"])

    def test_verify_replay_suite_passes(self, capsys):
        assert main(["verify", "--suite", "replay", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "replay:fluid+noise" in out
        assert "replay:des" in out
        assert "FAIL" not in out

    def test_verify_injection_detected_exits_1(self, capsys):
        code = main(["verify", "--suite", "replay", "--quiet", "--inject", "rng-perturb"])
        assert code == 1
        captured = capsys.readouterr()
        assert "detected" in captured.out
        assert "injection detected" in captured.err


class TestTelemetryCommands:
    def _run_with_telemetry(self, tmp_path):
        stream = tmp_path / "events.jsonl"
        assert main([
            "run", "fig4", "--reps", "2", "--quiet", "--telemetry", str(stream),
        ]) == 0
        return stream

    def test_run_writes_schema_valid_stream(self, tmp_path, capsys):
        from repro.telemetry import validate_jsonl

        stream = self._run_with_telemetry(tmp_path)
        assert validate_jsonl(stream) == []
        assert "telemetry stream appended" in capsys.readouterr().err

    def test_tail_validate_and_render(self, tmp_path, capsys):
        stream = self._run_with_telemetry(tmp_path)
        capsys.readouterr()
        assert main(["tail", str(stream), "--validate"]) == 0
        captured = capsys.readouterr()
        assert "run.end" in captured.out
        assert "schema-valid" in captured.err

    def test_tail_validate_rejects_bad_line(self, tmp_path, capsys):
        stream = tmp_path / "events.jsonl"
        stream.write_text('{"schema": 1, "seq": 0, "event": "nope", "t": null}\n')
        assert main(["tail", str(stream), "--validate", "--quiet"]) == 1
        assert "line 1" in capsys.readouterr().err

    def test_tail_missing_stream_structured_error(self, tmp_path, capsys):
        assert main(["tail", str(tmp_path / "missing.jsonl")]) == 1
        assert "error[TelemetryError]:" in capsys.readouterr().err

    def test_stats_renders_dashboard(self, tmp_path, capsys):
        stream = self._run_with_telemetry(tmp_path)
        capsys.readouterr()
        assert main(["stats", str(stream)]) == 0
        out = capsys.readouterr().out
        assert "campaign dashboard" in out
        assert "fig4" in out
        assert "metrics:" in out

    def test_stats_flags_seeded_bimodal_distribution(self, tmp_path, capsys):
        import json

        stream = tmp_path / "bimodal.jsonl"
        lows = [880.0, 885.0, 890.0, 882.0, 887.0]
        highs = [1740.0, 1745.0, 1750.0, 1742.0, 1747.0]
        with stream.open("w") as fh:
            for rep, bw in enumerate(lows + highs):
                fh.write(json.dumps({
                    "schema": 1, "seq": rep, "event": "run.end", "t": float(rep),
                    "exp_id": "fig6", "scenario": "scenario1",
                    "spec": "fig6[scenario1](chooser=random)", "rep": rep,
                    "block": 0, "status": "ok", "bw_mib_s": bw,
                    "makespan_s": 30.0, "retries": 0, "complete": True,
                    "error_type": None,
                }) + "\n")
        assert main(["stats", str(stream)]) == 0
        assert "BIMODAL" in capsys.readouterr().out

    def test_profile_flag_reports_spans(self, tmp_path, capsys):
        # --no-cache: a warm cache would replay without any engine spans.
        assert main(["run", "fig4", "--reps", "2", "--quiet", "--profile", "--no-cache"]) == 0
        err = capsys.readouterr().err
        assert "profile (wall clock)" in err
        assert "executor.run" in err
        assert "fluid.solve" in err


class TestProtocolOptions:
    def test_overrides_apply_and_restore(self):
        from repro.experiments.common import _RUNNER_OVERRIDES, protocol_options

        assert "on_error" not in _RUNNER_OVERRIDES
        with protocol_options(on_error="skip", checkpoint="c.json"):
            assert _RUNNER_OVERRIDES["on_error"] == "skip"
            assert _RUNNER_OVERRIDES["checkpoint"] == "c.json"
            with protocol_options(on_error="fail"):
                assert _RUNNER_OVERRIDES["on_error"] == "fail"
                assert _RUNNER_OVERRIDES["checkpoint"] == "c.json"
            assert _RUNNER_OVERRIDES["on_error"] == "skip"
        assert "on_error" not in _RUNNER_OVERRIDES

    def test_overrides_survive_exceptions(self):
        from repro.experiments.common import _RUNNER_OVERRIDES, protocol_options

        with pytest.raises(RuntimeError):
            with protocol_options(on_error="skip"):
                raise RuntimeError("boom")
        assert "on_error" not in _RUNNER_OVERRIDES
