"""The command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_args(self):
        args = build_parser().parse_args(["run", "fig6", "--reps", "5", "--seed", "3"])
        assert args.exp_id == "fig6"
        assert args.reps == 5
        assert args.seed == 3


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig6" in out and "fig13" in out

    def test_calibration(self, capsys):
        assert main(["calibration"]) == 0
        out = capsys.readouterr().out
        assert "scenario1" in out and "anchors" in out
        assert "880.0 MiB/s" in out

    def test_placements(self, capsys):
        assert main(["placements", "--stripe-count", "4", "--samples", "40"]) == 0
        out = capsys.readouterr().out
        assert "roundrobin" in out
        assert "(1,3): 100%" in out
        assert "hypergeometric" in out

    def test_run_analytic_experiment(self, capsys):
        assert main(["run", "fig3", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "min(N, M)" in out

    def test_run_with_csv_output(self, tmp_path, capsys):
        assert main(["run", "fig4", "--reps", "2", "--quiet", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "fig4.csv").exists()
        out = capsys.readouterr().out
        assert "records written" in out

    def test_run_unknown_experiment(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            main(["run", "fig99", "--quiet"])


class TestSystemCommands:
    def test_system_export_and_recommend(self, tmp_path, capsys):
        path = tmp_path / "sys.json"
        assert main(["system", "export", str(path), "--scenario", "scenario2"]) == 0
        assert path.exists()
        capsys.readouterr()
        assert main(["recommend", "--system", str(path), "--nodes", "2", "--ppn", "4"]) == 0
        out = capsys.readouterr().out
        assert "recommendation: stripe count 8" in out
        assert "scenario2" in out

    def test_recommend_builtin_scenario(self, capsys):
        assert main(["recommend", "--scenario", "scenario1", "--nodes", "2", "--ppn", "2"]) == 0
        out = capsys.readouterr().out
        assert "rationale" in out


class TestExplainCommand:
    def test_explain_prints_attribution(self, capsys):
        assert main([
            "explain", "--scenario", "scenario2", "--nodes", "8",
            "--stripe-count", "8",
        ]) == 0
        out = capsys.readouterr().out
        assert "Bottleneck attribution" in out
        assert "by class:" in out
        assert "MiB/s" in out
