"""The stripe-configuration advisor."""

import pytest

from repro.analysis.advisor import advise
from repro.calibration.plafrim import scenario1
from repro.errors import AnalysisError


@pytest.fixture(scope="module")
def recommendation():
    return advise(
        scenario1(),
        num_nodes=4,
        ppn=8,
        choosers=("roundrobin", "balanced"),
        stripe_counts=(1, 2, 4, 8),
        samples=40,
    )


class TestAdvise:
    def test_recommends_maximum_stripe_count(self, recommendation):
        """The paper's headline: use all targets."""
        assert recommendation.recommended.stripe_count == 8
        assert recommendation.recommended.deterministic

    def test_worst_case_ordering(self, recommendation):
        """Options are sorted by worst-case bandwidth (a default must
        not gamble on the placement lottery)."""
        worsts = [o.worst_mib_s for o in recommendation.options]
        assert worsts == sorted(worsts, reverse=True)

    def test_balanced_chooser_removes_lottery(self, recommendation):
        by_key = {(o.stripe_count, o.chooser): o for o in recommendation.options}
        # Stripe 2 round-robin is the bi-modal lottery: (1,1) or (0,2).
        assert not by_key[(2, "roundrobin")].deterministic
        assert by_key[(2, "roundrobin")].lottery_spread > 1.5
        assert by_key[(2, "balanced")].deterministic
        assert by_key[(2, "balanced")].worst_mib_s > by_key[(2, "roundrobin")].worst_mib_s
        # Balanced beats round-robin at the paper's default count too.
        assert by_key[(4, "balanced")].worst_mib_s > by_key[(4, "roundrobin")].worst_mib_s

    def test_roundrobin_stripe4_lottery_is_degenerate(self, recommendation):
        """PlaFRIM's round-robin at stripe 4: only (1,3), so the lottery
        collapses — but to the *bad* value."""
        by_key = {(o.stripe_count, o.chooser): o for o in recommendation.options}
        option = by_key[(4, "roundrobin")]
        assert option.deterministic
        assert option.expected_mib_s < by_key[(8, "roundrobin")].expected_mib_s

    def test_expected_within_bounds(self, recommendation):
        for o in recommendation.options:
            assert o.worst_mib_s <= o.expected_mib_s <= o.best_mib_s + 1e-6

    def test_table_renders(self, recommendation):
        text = recommendation.to_table()
        assert "recommendation: stripe count 8" in text
        assert "rationale" in text

    def test_validation(self):
        with pytest.raises(AnalysisError):
            advise(scenario1(), num_nodes=0)
