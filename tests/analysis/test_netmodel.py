"""Closed-form network models (Figures 3 and 8's law)."""

import pytest

from repro.analysis.netmodel import balance_bandwidth_law, network_bound
from repro.errors import AnalysisError


class TestNetworkBound:
    def test_client_side_limits_below_m(self):
        assert network_bound(1, 2, 1100.0) == 1100.0

    def test_server_side_limits_above_m(self):
        assert network_bound(8, 2, 1100.0) == 2200.0

    def test_crossover_at_n_equals_m(self):
        assert network_bound(2, 2, 1100.0) == network_bound(16, 2, 1100.0)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            network_bound(0, 2, 1100.0)
        with pytest.raises(AnalysisError):
            network_bound(2, 2, 0.0)


class TestBalanceLaw:
    @pytest.mark.parametrize(
        "placement,expected_factor",
        [
            ((1, 1), 2.0),
            ((3, 3), 2.0),
            ((4, 4), 2.0),
            ((0, 1), 1.0),
            ((0, 2), 1.0),
            ((0, 3), 1.0),
            ((1, 3), 4 / 3),
            ((1, 2), 3 / 2),
            ((2, 4), 3 / 2),
            ((2, 3), 5 / 3),
            ((3, 4), 7 / 4),
            ((1, 4), 5 / 4),
        ],
    )
    def test_figure8_ordering(self, placement, expected_factor):
        """The exact multipliers behind Figure 8's boxes."""
        assert balance_bandwidth_law(placement, 1100.0) == pytest.approx(
            1100.0 * expected_factor
        )

    def test_count_independence_single_server(self):
        """(0,1), (0,2), (0,3) identical: Lesson 4."""
        values = {balance_bandwidth_law((0, k), 1100.0) for k in (1, 2, 3)}
        assert len(values) == 1

    def test_paper_49_percent_claim(self):
        """(3,3) over (1,3): the paper reports >49%."""
        gain = balance_bandwidth_law((3, 3), 1100.0) / balance_bandwidth_law((1, 3), 1100.0)
        assert gain == pytest.approx(1.5)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            balance_bandwidth_law((0, 0), 1100.0)
        with pytest.raises(AnalysisError):
            balance_bandwidth_law((1, 1), 0.0)
