"""Lesson verdict functions on synthetic record stores."""

import numpy as np
import pytest

from repro.analysis.lessons import (
    LessonVerdict,
    default_stripe_gain,
    evaluate_lessons,
    lesson_1_2_node_count,
    lesson_3_ppn,
    lesson_5_bimodality,
    lesson_7_sharing,
)
from repro.engine.result import ApplicationResult, RunResult
from repro.errors import AnalysisError
from repro.methodology.records import RecordStore, RunRecord
from repro.units import GiB


def record(bw_mib_s, factors, apps=1, targets=((101, 201),)):
    """A synthetic single- or multi-app record with given bandwidth(s)."""
    bws = bw_mib_s if isinstance(bw_mib_s, (list, tuple)) else [bw_mib_s]
    results = tuple(
        ApplicationResult(
            app_id=f"app{i}",
            start_time=0.0,
            end_time=32 * 1024 / bw,
            volume_bytes=float(32 * GiB),
            num_nodes=int(factors.get("num_nodes", 8)),
            ppn=int(factors.get("ppn", 8)),
            stripe_count=int(factors.get("stripe_count", 4)),
            targets=tuple(targets[i % len(targets)]),
            placement=(1, 1),
        )
        for i, bw in enumerate(bws)
    )
    return RunRecord.from_run_result(
        RunResult(apps=results, segments=1), "syn", "scenario1", 0, factors
    )


def store_of(rows):
    store = RecordStore()
    for bw, factors in rows:
        store.append(record(bw, factors))
    return store


class TestLesson12:
    def test_passes_on_paper_shape(self):
        s1 = store_of([(880, {"num_nodes": 1}), (1460, {"num_nodes": 4})] * 2)
        s2 = store_of([(1630, {"num_nodes": 1}), (6100, {"num_nodes": 16})] * 2)
        verdict = lesson_1_2_node_count(s1, s2)
        assert verdict.passed
        assert verdict.observed["gain_s2"] > verdict.observed["gain_s1"]

    def test_fails_when_nodes_do_not_matter(self):
        flat = store_of([(1000, {"num_nodes": 1}), (1010, {"num_nodes": 16})] * 2)
        assert not lesson_1_2_node_count(flat, flat).passed

    def test_needs_a_sweep(self):
        single = store_of([(1000, {"num_nodes": 1})])
        with pytest.raises(AnalysisError):
            lesson_1_2_node_count(single, single)


class TestLesson3:
    def test_passes_on_matching_curves(self):
        rows = []
        for n, bw in ((1, 1600), (4, 4000)):
            rows += [(bw, {"num_nodes": n, "ppn": 8}), (bw * 0.99, {"num_nodes": n, "ppn": 16})]
        assert lesson_3_ppn(store_of(rows)).passed

    def test_fails_when_ppn_substitutes(self):
        rows = [
            (1600, {"num_nodes": 1, "ppn": 8}),
            (3000, {"num_nodes": 1, "ppn": 16}),  # doubled!
        ]
        assert not lesson_3_ppn(store_of(rows)).passed

    def test_requires_both_ppns(self):
        with pytest.raises(AnalysisError):
            lesson_3_ppn(store_of([(1000, {"num_nodes": 1, "ppn": 8})]))


class TestLesson5:
    def test_needs_enough_reps(self):
        store = store_of([(1000, {"stripe_count": k}) for k in range(1, 9)])
        with pytest.raises(AnalysisError):
            lesson_5_bimodality(store)

    def test_passes_on_paper_modality(self):
        rng = np.random.default_rng(0)
        rows = []
        modes = {1: (1082,), 2: (1082, 2125), 3: (1082, 1609), 4: (1435,),
                 5: (1347, 1783), 6: (1609, 2125), 7: (1869,), 8: (2125,)}
        for k, mus in modes.items():
            for i in range(30):
                mu = mus[i % len(mus)]
                rows.append((float(rng.normal(mu, 25)), {"stripe_count": k}))
        assert lesson_5_bimodality(store_of(rows)).passed


class TestLesson7:
    def test_passes_on_equal_groups(self):
        rng = np.random.default_rng(1)
        shared = RecordStore()
        distinct = RecordStore()
        for i in range(30):
            shared.append(record([float(rng.normal(3000, 200))] * 2, {}))
            distinct.append(record([float(rng.normal(3000, 200))] * 2, {}))
        verdict = lesson_7_sharing(shared, distinct)
        assert verdict.passed
        assert verdict.observed["pvalue"] > 0.05

    def test_fails_on_degraded_sharing(self):
        rng = np.random.default_rng(2)
        shared = RecordStore()
        distinct = RecordStore()
        for i in range(30):
            shared.append(record([float(rng.normal(2400, 100))] * 2, {}))
            distinct.append(record([float(rng.normal(3000, 100))] * 2, {}))
        assert not lesson_7_sharing(shared, distinct).passed


class TestRecommendationGain:
    def test_gain_threshold(self):
        good = store_of([(1434, {"stripe_count": 4}), (2107, {"stripe_count": 8})] * 2)
        assert default_stripe_gain(good).passed
        bad = store_of([(2000, {"stripe_count": 4}), (2100, {"stripe_count": 8})] * 2)
        assert not default_stripe_gain(bad).passed


class TestEvaluate:
    def test_requires_known_keys(self):
        with pytest.raises(AnalysisError):
            evaluate_lessons({"unknown": RecordStore()})

    def test_verdict_str(self):
        verdict = LessonVerdict(lesson=4, claim="c", observed={"x": 1.0}, passed=True)
        assert "Lesson 4 [PASS]" in str(verdict)
