"""(min, max) allocation analysis."""

import math

import pytest

from repro.analysis.allocation import (
    min_max,
    placement_distribution,
    possible_placements,
    random_placement_probabilities,
)
from repro.beegfs.filesystem import plafrim_deployment
from repro.errors import AnalysisError


class TestMinMax:
    def test_figure7_example(self):
        """One target on server 1, three on server 2 -> (1, 3)."""
        assert min_max({"storage1": 1, "storage2": 3}) == (1, 3)

    def test_sequence_input(self):
        assert min_max([3, 1]) == (1, 3)
        assert min_max([2, 2]) == (2, 2)

    def test_single_server(self):
        assert min_max([4]) == (0, 4)

    def test_more_than_two_servers_takes_busiest(self):
        assert min_max([0, 1, 3]) == (1, 3)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            min_max([])
        with pytest.raises(AnalysisError):
            min_max([-1, 2])


class TestPossiblePlacements:
    @pytest.mark.parametrize(
        "count,expected",
        [
            (1, [(0, 1)]),
            (2, [(0, 2), (1, 1)]),
            (4, [(0, 4), (1, 3), (2, 2)]),
            (8, [(4, 4)]),
        ],
    )
    def test_two_by_four_layout(self, count, expected):
        assert possible_placements(count) == expected

    def test_bounds(self):
        with pytest.raises(AnalysisError):
            possible_placements(0)
        with pytest.raises(AnalysisError):
            possible_placements(9)


class TestRandomProbabilities:
    def test_sums_to_one(self):
        for count in range(1, 9):
            probs = random_placement_probabilities(count)
            assert sum(probs.values()) == pytest.approx(1.0)

    def test_stripe4_exact_values(self):
        """C(8,4)=70: (0,4) 2/70, (1,3) 32/70, (2,2) 36/70."""
        probs = random_placement_probabilities(4)
        assert probs[(0, 4)] == pytest.approx(2 / 70)
        assert probs[(1, 3)] == pytest.approx(32 / 70)
        assert probs[(2, 2)] == pytest.approx(36 / 70)

    def test_paper_claim_best_as_likely_as_worst(self):
        """Under random selection the balanced (2,2) and unbalanced
        cases both occur with substantial probability."""
        probs = random_placement_probabilities(4)
        assert probs[(2, 2)] > 0.4
        assert probs[(1, 3)] + probs[(0, 4)] > 0.4


class TestEmpiricalDistribution:
    def test_roundrobin_stripe4_always_1_3(self):
        dist = placement_distribution(plafrim_deployment(keep_data=False), 4, samples=60)
        assert dist.modes == [(1, 3)]
        assert dist.is_deterministic()
        assert dist.balanced_fraction == 0.0

    def test_roundrobin_stripe6_bimodal(self):
        dist = placement_distribution(plafrim_deployment(keep_data=False), 6, samples=80)
        assert dist.modes == [(2, 4), (3, 3)]
        assert 0.3 < dist.balanced_fraction < 0.7

    def test_balanced_chooser_always_balanced(self):
        dist = placement_distribution(
            plafrim_deployment(keep_data=False), 4, chooser="balanced", samples=40
        )
        assert dist.modes == [(2, 2)]
        assert dist.balanced_fraction == 1.0

    def test_random_matches_hypergeometric(self):
        dist = placement_distribution(
            plafrim_deployment(keep_data=False), 4, chooser="random", samples=400
        )
        exact = random_placement_probabilities(4)
        for key, p in dist.probabilities.items():
            assert p == pytest.approx(exact[key], abs=0.08)

    def test_probabilities_sum_to_one(self):
        dist = placement_distribution(plafrim_deployment(keep_data=False), 3, samples=50)
        assert math.fsum(dist.probabilities.values()) == pytest.approx(1.0)
