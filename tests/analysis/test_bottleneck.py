"""Bottleneck attribution."""

import pytest

from repro.analysis.bottleneck import (
    attribute_bottlenecks,
    resource_kind,
)
from repro.errors import AnalysisError
from repro.netsim.fluid import SegmentDetail
from repro.workload.generator import single_application

from ..conftest import make_engine


def segment(start, duration, binding, utilization, latency=0):
    return SegmentDetail(
        start=start,
        duration=duration,
        binding=tuple(binding),
        utilization=dict(utilization),
        latency_capped=latency,
    )


class TestAttribution:
    def test_time_weighted_shares(self):
        details = [
            segment(0.0, 6.0, ["link:a"], {"link:a": 1.0, "link:b": 0.5}),
            segment(6.0, 4.0, ["link:b"], {"link:a": 0.2, "link:b": 1.0}),
        ]
        report = attribute_bottlenecks(details)
        shares = {s.resource_id: s for s in report.shares}
        assert shares["link:a"].binding_share == pytest.approx(0.6)
        assert shares["link:b"].binding_share == pytest.approx(0.4)
        assert shares["link:a"].mean_utilization == pytest.approx((6 + 0.8) / 10)
        assert report.dominant.resource_id == "link:a"
        assert report.total_s == pytest.approx(10.0)

    def test_latency_share(self):
        details = [
            segment(0.0, 1.0, [], {"link:a": 0.9}, latency=3),
            segment(1.0, 3.0, ["link:a"], {"link:a": 1.0}, latency=0),
        ]
        report = attribute_bottlenecks(details)
        assert report.latency_capped_share == pytest.approx(0.25)

    def test_by_kind_groups_and_caps(self):
        details = [
            segment(0.0, 1.0, ["link:a", "link:b"], {"link:a": 1.0, "link:b": 1.0}),
        ]
        by_kind = attribute_bottlenecks(details).by_kind()
        assert by_kind == {"network link": 1.0}

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            attribute_bottlenecks([])

    def test_to_text(self):
        details = [segment(0.0, 2.0, ["pool:s1"], {"pool:s1": 1.0})]
        text = attribute_bottlenecks(details).to_text()
        assert "pool:s1" in text and "per-server storage pool" in text

    @pytest.mark.parametrize(
        "rid,kind",
        [
            ("client:bora001", "per-node client ceiling"),
            ("san:storage", "system storage ramp"),
            ("ost:101", "storage target"),
            ("mystery:x", "mystery"),
        ],
    )
    def test_resource_kind(self, rid, kind):
        assert resource_kind(rid) == kind


class TestEngineExplain:
    def test_scenario1_is_network_bound(self, calib_s1, topo_s1):
        engine = make_engine(calib_s1, topo_s1, stripe_count=4)
        result, report = engine.explain([single_application(topo_s1, 8, ppn=8)], rep=0)
        by_kind = report.by_kind()
        network_share = by_kind.get("server ingest ramp", 0) + by_kind.get("network link", 0)
        assert network_share > 0.9
        assert "pool" not in report.dominant.resource_id

    def test_scenario2_stripe8_is_san_bound(self, calib_s2, topo_s2):
        engine = make_engine(calib_s2, topo_s2, stripe_count=8)
        result, report = engine.explain([single_application(topo_s2, 32, ppn=8)], rep=0)
        assert report.dominant.resource_id == "san:storage"

    def test_scenario2_stripe4_is_pool_bound(self, calib_s2, topo_s2):
        engine = make_engine(calib_s2, topo_s2, stripe_count=4)
        result, report = engine.explain([single_application(topo_s2, 32, ppn=8)], rep=0)
        assert report.dominant.kind == "per-server storage pool"

    def test_single_node_is_client_bound(self, calib_s2, topo_s2):
        engine = make_engine(calib_s2, topo_s2, stripe_count=8)
        result, report = engine.explain([single_application(topo_s2, 1, ppn=8)], rep=0)
        assert report.dominant.kind == "per-node client ceiling"

    def test_explain_result_matches_run(self, calib_s1, topo_s1):
        engine = make_engine(calib_s1, topo_s1)
        app = single_application(topo_s1, 4, ppn=8)
        plain = engine.run([app], rep=2).single.bandwidth_mib_s
        explained, _ = engine.explain([app], rep=2)
        assert explained.single.bandwidth_mib_s == pytest.approx(plain)


class TestExplainConcurrent:
    def test_concurrent_apps_share_the_san(self, calib_s2, topo_s2):
        from repro.workload.generator import concurrent_applications

        engine = make_engine(calib_s2, topo_s2, stripe_count=8)
        apps = concurrent_applications(topo_s2, 2, nodes_per_app=8)
        result, report = engine.explain(apps, rep=0)
        assert len(result.apps) == 2
        assert report.dominant.resource_id == "san:storage"
