"""Shared fixtures: calibrated platforms, deployments and engines."""

from __future__ import annotations

import pytest

from repro.beegfs.filesystem import BeeGFS, plafrim_deployment
from repro.calibration.plafrim import scenario1, scenario2
from repro.engine.base import EngineOptions
from repro.engine.fluid_runner import FluidEngine


@pytest.fixture(scope="session")
def calib_s1():
    return scenario1()


@pytest.fixture(scope="session")
def calib_s2():
    return scenario2()


@pytest.fixture(scope="session")
def topo_s1(calib_s1):
    return calib_s1.platform(32)


@pytest.fixture(scope="session")
def topo_s2(calib_s2):
    return calib_s2.platform(32)


@pytest.fixture
def deployment():
    """A data-keeping PlaFRIM deployment (correctness tests)."""
    return plafrim_deployment(keep_data=True)


@pytest.fixture
def fs(deployment):
    return BeeGFS(deployment, seed=1)


@pytest.fixture
def quiet_options():
    """Engine options for deterministic (noise-free) runs."""
    return EngineOptions(noise_enabled=False)


def make_engine(calib, topo, stripe_count=4, chooser=None, seed=0, **opts):
    """Helper used across engine tests."""
    kwargs = {"stripe_count": stripe_count}
    if chooser is not None:
        kwargs["chooser"] = chooser
    options = EngineOptions(**opts) if opts else EngineOptions(noise_enabled=False)
    return FluidEngine(calib, topo, calib.deployment(**kwargs), seed=seed, options=options)


@pytest.fixture
def engine_s1(calib_s1, topo_s1):
    return make_engine(calib_s1, topo_s1)


@pytest.fixture
def engine_s2(calib_s2, topo_s2):
    return make_engine(calib_s2, topo_s2)
