"""Shared fixtures: calibrated platforms, deployments and engines."""

from __future__ import annotations

import os

import pytest

from repro.beegfs.filesystem import BeeGFS, plafrim_deployment
from repro.calibration.plafrim import scenario1, scenario2
from repro.engine.base import EngineOptions
from repro.engine.fluid_runner import FluidEngine


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Point the result cache at a per-session tmp dir, never ~/.cache."""
    previous = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("result-cache"))
    yield
    if previous is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = previous


@pytest.fixture(scope="session")
def calib_s1():
    return scenario1()


@pytest.fixture(scope="session")
def calib_s2():
    return scenario2()


@pytest.fixture(scope="session")
def topo_s1(calib_s1):
    return calib_s1.platform(32)


@pytest.fixture(scope="session")
def topo_s2(calib_s2):
    return calib_s2.platform(32)


@pytest.fixture
def deployment():
    """A data-keeping PlaFRIM deployment (correctness tests)."""
    return plafrim_deployment(keep_data=True)


@pytest.fixture
def fs(deployment):
    return BeeGFS(deployment, seed=1)


@pytest.fixture
def quiet_options():
    """Engine options for deterministic (noise-free) runs."""
    return EngineOptions(noise_enabled=False)


def make_engine(calib, topo, stripe_count=4, chooser=None, seed=0, **opts):
    """Helper used across engine tests."""
    kwargs = {"stripe_count": stripe_count}
    if chooser is not None:
        kwargs["chooser"] = chooser
    options = EngineOptions(**opts) if opts else EngineOptions(noise_enabled=False)
    return FluidEngine(calib, topo, calib.deployment(**kwargs), seed=seed, options=options)


@pytest.fixture
def engine_s1(calib_s1, topo_s1):
    return make_engine(calib_s1, topo_s1)


@pytest.fixture
def engine_s2(calib_s2, topo_s2):
    return make_engine(calib_s2, topo_s2)
