"""The exception hierarchy: catchability contracts."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_reproerror(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    @pytest.mark.parametrize(
        "cls,builtin",
        [
            (errors.ConfigError, ValueError),
            (errors.UnitParseError, ValueError),
            (errors.SimulationError, RuntimeError),
            (errors.DeadlockError, RuntimeError),
            (errors.TopologyError, ValueError),
            (errors.NoSuchEntityError, KeyError),
            (errors.EntityExistsError, FileExistsError),
            (errors.NotADirectoryBeeGFSError, NotADirectoryError),
            (errors.IsADirectoryBeeGFSError, IsADirectoryError),
            (errors.ExperimentError, RuntimeError),
        ],
    )
    def test_builtin_compatibility(self, cls, builtin):
        """Library errors stay catchable as the matching builtin."""
        assert issubclass(cls, builtin)

    def test_specialisations(self):
        assert issubclass(errors.DeadlockError, errors.SimulationError)
        assert issubclass(errors.RoutingError, errors.TopologyError)
        assert issubclass(errors.UnitParseError, errors.ConfigError)
        assert issubclass(errors.StripingError, errors.BeeGFSError)
        assert issubclass(errors.TargetChooserError, errors.BeeGFSError)

    def test_catch_library_without_builtins(self):
        """ReproError does not swallow programming mistakes."""
        with pytest.raises(errors.ReproError):
            raise errors.FlowError("x")
        assert not issubclass(KeyError, errors.ReproError)
