"""The exception hierarchy: catchability contracts."""

import pytest

from repro import errors


class TestHierarchy:
    def test_everything_is_reproerror(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    @pytest.mark.parametrize(
        "cls,builtin",
        [
            (errors.ConfigError, ValueError),
            (errors.UnitParseError, ValueError),
            (errors.SimulationError, RuntimeError),
            (errors.DeadlockError, RuntimeError),
            (errors.TopologyError, ValueError),
            (errors.NoSuchEntityError, KeyError),
            (errors.EntityExistsError, FileExistsError),
            (errors.NotADirectoryBeeGFSError, NotADirectoryError),
            (errors.IsADirectoryBeeGFSError, IsADirectoryError),
            (errors.ExperimentError, RuntimeError),
        ],
    )
    def test_builtin_compatibility(self, cls, builtin):
        """Library errors stay catchable as the matching builtin."""
        assert issubclass(cls, builtin)

    def test_specialisations(self):
        assert issubclass(errors.DeadlockError, errors.SimulationError)
        assert issubclass(errors.RoutingError, errors.TopologyError)
        assert issubclass(errors.UnitParseError, errors.ConfigError)
        assert issubclass(errors.StripingError, errors.BeeGFSError)
        assert issubclass(errors.TargetChooserError, errors.BeeGFSError)

    def test_catch_library_without_builtins(self):
        """ReproError does not swallow programming mistakes."""
        with pytest.raises(errors.ReproError):
            raise errors.FlowError("x")
        assert not issubclass(KeyError, errors.ReproError)


class TestFaultHierarchy:
    """The fault/robustness additions keep the catchability contracts."""

    def test_new_classes_catchable_as_builtins(self):
        assert issubclass(errors.FaultError, ValueError)
        assert issubclass(errors.CheckpointError, errors.ExperimentError)
        assert issubclass(errors.InsufficientTargetsError, errors.TargetChooserError)

    def test_insufficient_targets_carries_shortfall(self):
        exc = errors.InsufficientTargetsError(4, 2, (104, 204))
        assert exc.requested == 4
        assert exc.available == 2
        assert exc.pool_ids == (104, 204)
        assert "4" in str(exc) and "2 available" in str(exc)


class TestNoSuchEntityStr:
    def test_str_is_the_message_not_a_repr(self):
        """KeyError.__str__ would quote the message; ours must not."""
        exc = errors.NoSuchEntityError("no target 999 registered")
        assert str(exc) == "no target 999 registered"

    def test_still_catchable_as_keyerror(self):
        with pytest.raises(KeyError):
            raise errors.NoSuchEntityError("gone")

    def test_message_renders_in_traceback_format(self):
        try:
            raise errors.NoSuchEntityError("no such path: /x")
        except errors.NoSuchEntityError as exc:
            assert f"{exc}" == "no such path: /x"
