"""Fluid-vs-DES cross-validation.

The fluid engine's aggregate-flow + latency-cap approximations must
agree with the request-level processor-sharing DES on configurations
small enough for the DES to run.  Tolerances are loose-ish (the DES
resolves transfer granularity the fluid model blurs) but tight enough
to catch calibration-plumbing regressions.
"""

import pytest

from repro.engine.base import EngineOptions
from repro.engine.des_runner import DESEngine
from repro.engine.fluid_runner import FluidEngine
from repro.units import MiB
from repro.workload.generator import single_application


def pair(calib, topo, stripe_count, chooser=None):
    kwargs = {"stripe_count": stripe_count}
    if chooser:
        kwargs["chooser"] = chooser
    options = EngineOptions(noise_enabled=False, include_metadata_overhead=False)
    deployment = calib.deployment(**kwargs)
    return (
        FluidEngine(calib, topo, deployment, seed=0, options=options),
        DESEngine(calib, topo, deployment, seed=0, options=options),
    )


CASES = [
    # (scenario fixture name, stripe, chooser, nodes, ppn, volume MiB)
    ("s1", 4, None, 2, 4, 512),
    ("s1", 2, "fixed:101,201", 4, 4, 512),
    ("s1", 2, "fixed:201,202", 4, 4, 512),
    ("s1", 8, None, 4, 8, 1024),
    ("s2", 4, None, 2, 4, 512),
    ("s2", 8, None, 4, 8, 1024),
    ("s2", 1, None, 2, 4, 256),
]


@pytest.mark.parametrize("scenario,stripe,chooser,nodes,ppn,volume_mib", CASES)
def test_fluid_matches_des(scenario, stripe, chooser, nodes, ppn, volume_mib, request):
    calib = request.getfixturevalue(f"calib_{scenario}")
    topo = request.getfixturevalue(f"topo_{scenario}")
    fluid, des = pair(calib, topo, stripe, chooser)
    app = single_application(topo, nodes, ppn=ppn, total_bytes=volume_mib * MiB)
    bw_fluid = fluid.run([app], rep=0).single.bandwidth_mib_s
    bw_des = des.run([app], rep=0).single.bandwidth_mib_s
    assert bw_fluid == pytest.approx(bw_des, rel=0.15), (
        f"fluid {bw_fluid:.0f} vs DES {bw_des:.0f} MiB/s"
    )


def test_both_engines_rank_placements_identically(calib_s1, topo_s1):
    ranking = {}
    for engine_kind in ("fluid", "des"):
        values = []
        for chooser in ("fixed:201,202", "fixed:101,201"):
            fluid, des = pair(calib_s1, topo_s1, 2, chooser)
            engine = fluid if engine_kind == "fluid" else des
            app = single_application(topo_s1, 4, ppn=4, total_bytes=256 * MiB)
            values.append(engine.run([app], rep=0).single.bandwidth_mib_s)
        ranking[engine_kind] = values[1] > values[0]
    assert ranking["fluid"] == ranking["des"] is True
