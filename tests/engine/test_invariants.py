"""Cross-cutting engine invariants (property-style)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beegfs.management import TargetState
from repro.engine.base import EngineOptions
from repro.engine.fluid_runner import FluidEngine
from repro.units import GiB, MiB
from repro.workload.generator import single_application

from ..conftest import make_engine


class TestMonotonicity:
    """Noise-free runs must respect obvious physical orderings."""

    @given(n_pair=st.tuples(st.integers(1, 16), st.integers(1, 16)))
    @settings(max_examples=12, deadline=None)
    def test_more_nodes_never_slower(self, n_pair):
        # Built directly (hypothesis does not mix with function fixtures).
        from repro.calibration.plafrim import scenario2

        calib = scenario2()
        topo = calib.platform(16)
        engine = make_engine(calib, topo, stripe_count=4)
        lo, hi = sorted(n_pair)
        if lo == hi:
            return
        bw_lo = engine.run([single_application(topo, lo, ppn=8)], rep=0).single.bandwidth_mib_s
        bw_hi = engine.run([single_application(topo, hi, ppn=8)], rep=0).single.bandwidth_mib_s
        assert bw_hi >= bw_lo * 0.999

    def test_more_targets_never_slower_balanced(self, calib_s2, topo_s2):
        previous = 0.0
        for k in (2, 4, 6, 8):
            engine = make_engine(calib_s2, topo_s2, stripe_count=k, chooser="balanced")
            bw = engine.run([single_application(topo_s2, 16, ppn=8)], rep=0).single.bandwidth_mib_s
            assert bw >= previous * 0.999
            previous = bw

    def test_volume_scales_duration_linearly(self, calib_s1, topo_s1):
        """Noise-free: past the fixed overhead, time ~ volume."""
        engine = make_engine(calib_s1, topo_s1, noise_enabled=False, include_metadata_overhead=False)
        d16 = engine.run([single_application(topo_s1, 4, ppn=8, total_bytes=16 * GiB)], rep=0).single.duration
        d32 = engine.run([single_application(topo_s1, 4, ppn=8, total_bytes=32 * GiB)], rep=0).single.duration
        assert d32 == pytest.approx(2 * d16, rel=0.02)


class TestDegradedDeployments:
    def test_offline_target_avoided(self, calib_s1, topo_s1):
        """A chooser never places new files on an offline target."""
        engine = make_engine(calib_s1, topo_s1, stripe_count=8)
        prepared = engine.prepare([single_application(topo_s1, 2, ppn=4, total_bytes=GiB)], rep=0)
        fs = prepared.fs
        fs.management.set_state(101, TargetState.OFFLINE)
        inode = fs.create_file("/after-failure.dat")
        assert 101 not in inode.pattern.targets
        assert inode.pattern.stripe_count == 7  # clamped to the live pool

    def test_run_with_degraded_stripe(self, calib_s2, topo_s2):
        """A 7-target deployment still runs end to end."""
        from repro.beegfs.filesystem import BeeGFSDeploymentSpec
        from repro.beegfs.meta import DirectoryConfig

        spec = BeeGFSDeploymentSpec(
            servers=(("storage1", (101, 102, 103)), ("storage2", (201, 202, 203, 204))),
            default_config=DirectoryConfig(stripe_count=7),
            default_chooser="balanced",
            keep_data=False,
        )
        engine = FluidEngine(
            calib_s2, topo_s2, spec, seed=0, options=EngineOptions(noise_enabled=False)
        )
        result = engine.run([single_application(topo_s2, 8, ppn=8, total_bytes=4 * GiB)], rep=0)
        assert result.single.placement == (3, 4)
        assert result.single.bandwidth_mib_s > 1000


class TestAccounting:
    @given(
        nodes=st.integers(1, 8),
        ppn=st.sampled_from([2, 4, 8]),
        stripe=st.integers(1, 8),
    )
    @settings(max_examples=15, deadline=None)
    def test_flow_volumes_sum_to_app_volume(self, nodes, ppn, stripe):
        from repro.calibration.plafrim import scenario1

        calib = scenario1()
        topo = calib.platform(8)
        engine = make_engine(calib, topo, stripe_count=stripe)
        app = single_application(topo, nodes, ppn=ppn, total_bytes=2 * GiB)
        prepared = engine.prepare([app], rep=0)
        assert sum(f.volume_bytes for f in prepared.flows) == pytest.approx(app.total_bytes)
        # Depth weights: ppn * e / k per node, clamped at the RPC slots.
        e = max(1, app.config.transfer_size // 512 / 1024 * 1024)  # 1 MiB / 512 KiB
        per_node = sum(f.weight for f in prepared.flows) / nodes
        assert per_node <= calib.client.max_inflight_requests + 1e-9

    def test_engines_share_prepare(self, calib_s1, topo_s1):
        """Fluid and DES prepare identical flow sets for the same rep."""
        from repro.engine.des_runner import DESEngine

        options = EngineOptions(noise_enabled=False)
        app = single_application(topo_s1, 2, ppn=4, total_bytes=GiB)
        fluid = FluidEngine(calib_s1, topo_s1, calib_s1.deployment(), seed=3, options=options)
        des = DESEngine(calib_s1, topo_s1, calib_s1.deployment(), seed=3, options=options)
        pf = fluid.prepare([app], rep=5)
        pd = des.prepare([app], rep=5)
        assert pf.app_targets == pd.app_targets
        assert [f.flow_id for f in pf.flows] == [f.flow_id for f in pd.flows]
        assert [f.volume_bytes for f in pf.flows] == [f.volume_bytes for f in pd.flows]
