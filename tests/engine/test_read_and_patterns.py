"""Read-phase engine runs and access-pattern behaviour."""

import pytest

from repro.errors import ExperimentError, WorkloadError
from repro.units import GiB
from repro.workload.generator import single_application
from repro.workload.patterns import AccessPattern, IORConfig

from ..conftest import make_engine


class TestIORConfigOperation:
    def test_defaults_to_write(self):
        assert IORConfig(block_size=GiB).operation == "write"

    def test_read_command_flag(self):
        read = IORConfig.for_total_size(GiB, 4, operation="read")
        assert "-r" in read.ior_command(4)
        assert "-w" not in read.ior_command(4)

    def test_invalid_operation(self):
        with pytest.raises(WorkloadError):
            IORConfig(block_size=GiB, operation="append")


class TestReadRuns:
    def test_reads_faster_when_storage_bound(self, calib_s2, topo_s2):
        engine = make_engine(calib_s2, topo_s2, stripe_count=8)
        write = engine.run(
            [single_application(topo_s2, 32, ppn=8, operation="write")], rep=0
        ).single.bandwidth_mib_s
        read = engine.run(
            [single_application(topo_s2, 32, ppn=8, operation="read")], rep=0
        ).single.bandwidth_mib_s
        factor = calib_s2.read_storage_factor
        assert read == pytest.approx(write * factor, rel=0.05)

    def test_reads_identical_when_network_bound(self, calib_s1, topo_s1):
        """Scenario 1: the link limits; the parity-free storage gain is
        invisible — the paper's 'we expect the observed behaviors to be
        the same' for the network-bound case."""
        engine = make_engine(calib_s1, topo_s1, stripe_count=8)
        write = engine.run(
            [single_application(topo_s1, 8, ppn=8, operation="write")], rep=0
        ).single.bandwidth_mib_s
        read = engine.run(
            [single_application(topo_s1, 8, ppn=8, operation="read")], rep=0
        ).single.bandwidth_mib_s
        assert read == pytest.approx(write, rel=0.01)

    def test_mixed_operations_rejected(self, calib_s2, topo_s2):
        engine = make_engine(calib_s2, topo_s2)
        writer = single_application(topo_s2, 2, ppn=8, operation="write", app_id="w")
        reader = single_application(topo_s2, 2, ppn=8, operation="read", app_id="r")
        reader = reader.delayed(0.0)
        # put reader on other nodes
        from repro.workload.application import Application

        reader = Application(
            app_id="r",
            nodes=("bora003", "bora004"),
            ppn=8,
            config=reader.config,
        )
        with pytest.raises(ExperimentError):
            engine.run([writer, reader], rep=0)

    def test_read_placement_behaviour_matches_write(self, calib_s1, topo_s1):
        """Balance still rules reads in scenario 1."""
        def bw(chooser):
            engine = make_engine(calib_s1, topo_s1, stripe_count=2, chooser=chooser)
            app = single_application(topo_s1, 8, ppn=8, operation="read")
            return engine.run([app], rep=0).single.bandwidth_mib_s

        assert bw("fixed:101,201") > 1.8 * bw("fixed:201,202")


class TestNNPattern:
    def test_nn_uses_all_targets_regardless_of_stripe(self, calib_s2, topo_s2):
        """Round-robin over many files covers the whole pool."""
        engine = make_engine(calib_s2, topo_s2, stripe_count=1)
        app = single_application(topo_s2, 8, ppn=8, pattern=AccessPattern.NN)
        result = engine.run([app], rep=0)
        assert len(result.single.targets) == 8

    def test_nn_insensitive_to_stripe_count(self, calib_s2, topo_s2):
        values = []
        for k in (1, 4, 8):
            engine = make_engine(calib_s2, topo_s2, stripe_count=k)
            app = single_application(topo_s2, 8, ppn=8, pattern=AccessPattern.NN)
            values.append(engine.run([app], rep=0).single.bandwidth_mib_s)
        assert max(values) / min(values) < 1.05

    def test_nn_matches_n1_best_case(self, calib_s2, topo_s2):
        engine = make_engine(calib_s2, topo_s2, stripe_count=8)
        nn = engine.run(
            [single_application(topo_s2, 8, ppn=8, pattern=AccessPattern.NN)], rep=0
        ).single.bandwidth_mib_s
        n1 = engine.run(
            [single_application(topo_s2, 8, ppn=8)], rep=0
        ).single.bandwidth_mib_s
        assert nn == pytest.approx(n1, rel=0.05)
