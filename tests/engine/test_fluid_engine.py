"""The fluid engine end to end: paper anchors on the calibrated model."""

import numpy as np
import pytest

from repro.engine.base import EngineOptions
from repro.engine.fluid_runner import FluidEngine
from repro.errors import ExperimentError
from repro.units import GiB
from repro.workload.generator import concurrent_applications, single_application

from ..conftest import make_engine


class TestScenario1Anchors:
    """Network-bound anchors from Figures 4a, 6a and 8."""

    def test_single_node_is_client_bound(self, calib_s1, topo_s1):
        engine = make_engine(calib_s1, topo_s1)
        result = engine.run([single_application(topo_s1, 1, ppn=8)], rep=0)
        assert result.single.bandwidth_mib_s == pytest.approx(880, rel=0.08)

    def test_plateau_near_1460(self, calib_s1, topo_s1):
        engine = make_engine(calib_s1, topo_s1)
        result = engine.run([single_application(topo_s1, 8, ppn=8)], rep=0)
        assert result.single.bandwidth_mib_s == pytest.approx(1460, rel=0.05)
        assert result.single.placement == (1, 3)

    def test_balanced_peak_near_2200(self, calib_s1, topo_s1):
        engine = make_engine(calib_s1, topo_s1, stripe_count=8)
        result = engine.run([single_application(topo_s1, 8, ppn=8)], rep=0)
        assert result.single.placement == (4, 4)
        assert result.single.bandwidth_mib_s == pytest.approx(2200, rel=0.07)

    def test_balance_law_ordering(self, calib_s1, topo_s1):
        """(0,k) < (1,3) < (1,2) < (3,4) < balanced (Figure 8)."""
        def bw(chooser, count):
            engine = make_engine(calib_s1, topo_s1, stripe_count=count, chooser=chooser)
            return engine.run([single_application(topo_s1, 8, ppn=8)], rep=0).single.bandwidth_mib_s

        one_server = bw("fixed:201,202", 2)       # (0,2)
        unbalanced = bw("fixed:101,201,202,203", 4)  # (1,3)
        three = bw("fixed:101,201,202", 3)        # (1,2)
        seven = bw("fixed:101,102,103,201,202,203,204", 7)  # (3,4)
        balanced = bw("fixed:101,201", 2)         # (1,1)
        assert one_server < unbalanced < three < seven < balanced

    def test_target_count_irrelevant_when_single_server(self, calib_s1, topo_s1):
        """(0,1) ~ (0,2) ~ (0,3): Lesson 4's count-independence."""
        values = []
        for chooser, count in (("fixed:201", 1), ("fixed:201,202", 2), ("fixed:201,202,203", 3)):
            engine = make_engine(calib_s1, topo_s1, stripe_count=count, chooser=chooser)
            values.append(
                engine.run([single_application(topo_s1, 8, ppn=8)], rep=0).single.bandwidth_mib_s
            )
        assert max(values) - min(values) < 0.03 * max(values)


class TestScenario2Anchors:
    """Storage-bound anchors from Figures 4b, 6b, 10 and 11."""

    def test_single_node_is_client_bound(self, calib_s2, topo_s2):
        engine = make_engine(calib_s2, topo_s2)
        result = engine.run([single_application(topo_s2, 1, ppn=8)], rep=0)
        assert result.single.bandwidth_mib_s == pytest.approx(1630, rel=0.08)

    def test_stripe1_near_1764(self, calib_s2, topo_s2):
        engine = make_engine(calib_s2, topo_s2, stripe_count=1)
        result = engine.run([single_application(topo_s2, 32, ppn=8)], rep=0)
        assert result.single.bandwidth_mib_s == pytest.approx(1764, rel=0.05)

    def test_stripe8_near_8064(self, calib_s2, topo_s2):
        engine = make_engine(calib_s2, topo_s2, stripe_count=8)
        result = engine.run([single_application(topo_s2, 32, ppn=8)], rep=0)
        assert result.single.bandwidth_mib_s == pytest.approx(8064, rel=0.08)

    def test_bandwidth_grows_with_stripe_count(self, calib_s2, topo_s2):
        means = []
        for k in (1, 2, 4, 8):
            engine = make_engine(calib_s2, topo_s2, stripe_count=k)
            result = engine.run([single_application(topo_s2, 32, ppn=8)], rep=0)
            means.append(result.single.bandwidth_mib_s)
        assert means == sorted(means)
        assert means[-1] / means[0] > 3.5  # paper: >350%

    def test_balanced_beats_unbalanced_same_count(self, calib_s2, topo_s2):
        """(3,3) ~10% above (2,4), Figure 10."""
        def bw(chooser):
            engine = make_engine(calib_s2, topo_s2, stripe_count=6, chooser=chooser)
            return engine.run([single_application(topo_s2, 32, ppn=8)], rep=0).single.bandwidth_mib_s

        balanced = bw("fixed:101,102,103,201,202,203")
        unbalanced = bw("fixed:101,102,201,202,203,204")
        assert 1.03 < balanced / unbalanced < 1.30


class TestEngineMechanics:
    def test_reproducible_per_rep(self, engine_s1, topo_s1):
        app = single_application(topo_s1, 4, ppn=8)
        a = engine_s1.run([app], rep=7).single.bandwidth_mib_s
        b = engine_s1.run([app], rep=7).single.bandwidth_mib_s
        assert a == b

    def test_noise_varies_across_reps(self, calib_s2, topo_s2):
        engine = make_engine(calib_s2, topo_s2, noise_enabled=True)
        app = single_application(topo_s2, 16, ppn=8)
        values = {round(engine.run([app], rep=r).single.bandwidth_mib_s, 3) for r in range(5)}
        assert len(values) > 1

    def test_metadata_overhead_toggle(self, calib_s1, topo_s1):
        app = single_application(topo_s1, 4, ppn=8)
        with_meta = make_engine(calib_s1, topo_s1, noise_enabled=False).run([app], rep=0)
        without = make_engine(
            calib_s1, topo_s1, noise_enabled=False, include_metadata_overhead=False
        ).run([app], rep=0)
        assert with_meta.single.duration > without.single.duration

    def test_volume_accounted_exactly(self, engine_s1, topo_s1):
        app = single_application(topo_s1, 4, ppn=8)
        result = engine_s1.run([app], rep=0)
        assert result.single.volume_bytes == pytest.approx(32 * GiB, rel=1e-9)

    def test_node_sharing_rejected(self, calib_s1, topo_s1, quiet_options):
        engine = FluidEngine(
            calib_s1, topo_s1, calib_s1.deployment(), seed=0, options=quiet_options
        )
        a = single_application(topo_s1, 2, ppn=8, app_id="a")
        b = single_application(topo_s1, 2, ppn=8, app_id="b")  # same first nodes
        with pytest.raises(ExperimentError):
            engine.run([a, b], rep=0)

    def test_empty_run_rejected(self, engine_s1):
        with pytest.raises(ExperimentError):
            engine_s1.run([], rep=0)

    def test_observe_servers_yields_series(self, calib_s1, topo_s1):
        engine = make_engine(calib_s1, topo_s1, noise_enabled=False, observe_servers=True)
        result = engine.run([single_application(topo_s1, 4, ppn=8)], rep=0)
        assert set(result.resource_series) == {"ingest:storage1", "ingest:storage2"}

    def test_ppn16_slightly_below_ppn8(self, calib_s2, topo_s2):
        engine = make_engine(calib_s2, topo_s2)
        bw8 = engine.run([single_application(topo_s2, 1, ppn=8)], rep=0).single.bandwidth_mib_s
        bw16 = engine.run([single_application(topo_s2, 1, ppn=16)], rep=1).single.bandwidth_mib_s
        assert 0.9 < bw16 / bw8 < 1.0


class TestConcurrentRuns:
    def test_aggregate_matches_scaled_single(self, calib_s2, topo_s2):
        """Lesson 7's core: 2 apps x 8 OSTs aggregate ~ 1 app x 16 nodes."""
        engine = make_engine(calib_s2, topo_s2, stripe_count=8)
        apps = concurrent_applications(topo_s2, 2, nodes_per_app=8)
        concurrent = engine.run(apps, rep=0)
        single = engine.run([single_application(topo_s2, 16, ppn=8)], rep=0)
        ratio = concurrent.aggregate_bandwidth_mib_s / single.single.bandwidth_mib_s
        assert 0.9 < ratio < 1.2

    def test_individual_slowdown_from_sharing_bandwidth(self, calib_s2, topo_s2):
        engine = make_engine(calib_s2, topo_s2, stripe_count=8)
        apps = concurrent_applications(topo_s2, 2, nodes_per_app=8)
        concurrent = engine.run(apps, rep=0)
        alone = engine.run([single_application(topo_s2, 8, ppn=8)], rep=0)
        for app in concurrent.apps:
            assert app.bandwidth_mib_s < alone.single.bandwidth_mib_s

    def test_interleaved_creations_mixture(self, calib_s2, topo_s2):
        """With gaps of {0,1,2} background files, two stripe-4 apps
        share all targets in about one third of runs (Section IV-D)."""
        engine = make_engine(
            calib_s2, topo_s2, stripe_count=4, noise_enabled=True,
            interleaved_creations=(0, 1, 2),
        )
        shared = 0
        reps = 45
        for rep in range(reps):
            apps = concurrent_applications(topo_s2, 2, nodes_per_app=8)
            result = engine.run(apps, rep=rep)
            n = len(result.shared_targets())
            assert n in (0, 4)
            shared += n == 4
        assert 0.15 < shared / reps < 0.55
