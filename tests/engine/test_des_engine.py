"""Request-level DES engine."""

import pytest

from repro.engine.des_runner import DESEngine
from repro.engine.base import EngineOptions
from repro.errors import ExperimentError
from repro.units import GiB, MiB
from repro.workload.generator import concurrent_applications, single_application


def des(calib, topo, stripe_count=4, **opts):
    options = EngineOptions(noise_enabled=False, **opts)
    return DESEngine(calib, topo, calib.deployment(stripe_count=stripe_count), seed=0, options=options)


class TestBasics:
    def test_small_run_completes(self, calib_s1, topo_s1):
        engine = des(calib_s1, topo_s1)
        app = single_application(topo_s1, 2, ppn=2, total_bytes=64 * MiB)
        result = engine.run([app], rep=0)
        assert result.single.volume_bytes == 64 * MiB
        assert result.single.duration > 0
        assert result.segments > 0

    def test_reproducible(self, calib_s1, topo_s1):
        engine = des(calib_s1, topo_s1)
        app = single_application(topo_s1, 2, ppn=2, total_bytes=32 * MiB)
        a = engine.run([app], rep=3).single.bandwidth_mib_s
        b = engine.run([app], rep=3).single.bandwidth_mib_s
        assert a == b

    def test_request_budget_guard(self, calib_s1, topo_s1):
        engine = des(calib_s1, topo_s1)
        app = single_application(topo_s1, 8, ppn=8, total_bytes=200 * GiB)
        with pytest.raises(ExperimentError):
            engine.run([app], rep=0)

    def test_concurrent_apps(self, calib_s2, topo_s2):
        engine = des(calib_s2, topo_s2, stripe_count=8)
        apps = concurrent_applications(topo_s2, 2, nodes_per_app=2, ppn=2, total_bytes_each=64 * MiB)
        result = engine.run(apps, rep=0)
        assert len(result.apps) == 2
        assert result.aggregate_bandwidth_mib_s > 0

    def test_balanced_beats_single_server_des(self, calib_s1, topo_s1):
        """The Figure 9 effect reproduced at request level."""

        def run(chooser):
            options = EngineOptions(noise_enabled=False, include_metadata_overhead=False)
            engine = DESEngine(
                calib_s1, topo_s1,
                calib_s1.deployment(stripe_count=2, chooser=chooser),
                seed=0, options=options,
            )
            app = single_application(topo_s1, 4, ppn=4, total_bytes=256 * MiB)
            return engine.run([app], rep=0).single.bandwidth_mib_s

        assert run("fixed:101,201") > 1.6 * run("fixed:201,202")


class TestDESWithNoise:
    def test_noisy_run_completes_and_varies(self, calib_s2, topo_s2):
        options = EngineOptions(noise_enabled=True)
        engine = DESEngine(
            calib_s2, topo_s2, calib_s2.deployment(stripe_count=4), seed=0, options=options
        )
        app = single_application(topo_s2, 2, ppn=2, total_bytes=128 * MiB)
        values = {round(engine.run([app], rep=r).single.bandwidth_mib_s, 2) for r in range(3)}
        assert len(values) > 1
        assert all(v > 100 for v in values)
