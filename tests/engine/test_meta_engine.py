"""The metadata (mdtest) engine on the DES kernel."""

import pytest

from repro.beegfs.filesystem import plafrim_deployment
from repro.engine.meta_engine import MDSPerformanceSpec, MetadataEngine
from repro.errors import ExperimentError
from repro.workload.mdtest import MDTestConfig, MDTestPhase, MetadataOp


def engine(seed=0, **spec_kw):
    return MetadataEngine(
        plafrim_deployment(keep_data=False), MDSPerformanceSpec(**spec_kw), seed=seed
    )


class TestSpec:
    def test_peak_rate(self):
        spec = MDSPerformanceSpec(workers=8, create_service_s=500e-6)
        assert spec.peak_rate(MetadataOp.CREATE) == pytest.approx(16000)

    def test_validation(self):
        with pytest.raises(ExperimentError):
            MDSPerformanceSpec(workers=0)
        with pytest.raises(ExperimentError):
            MDSPerformanceSpec(create_service_s=0)


class TestRuns:
    def test_single_process_latency_bound(self):
        """One blocking client cannot saturate the MDS: its rate is
        1 / (rpc latency + service time)-ish."""
        result = engine(service_jitter=0.0).run(MDTestConfig(50), nprocs=1)
        rate = result.rate(MetadataOp.CREATE)
        spec = MDSPerformanceSpec(service_jitter=0.0)
        expected = 1.0 / (spec.rpc_latency_s + spec.create_service_s)
        assert rate == pytest.approx(expected, rel=0.05)

    def test_rate_saturates_at_worker_pool(self):
        spec_kw = dict(service_jitter=0.0)
        result = engine(**spec_kw).run(MDTestConfig(50), nprocs=64)
        peak = MDSPerformanceSpec(service_jitter=0.0).peak_rate(MetadataOp.CREATE)
        assert result.rate(MetadataOp.CREATE) == pytest.approx(peak, rel=0.05)

    def test_shared_dir_uses_one_mds(self):
        result = engine().run(MDTestConfig(20, directory_mode=MDTestPhase.SHARED_DIR), nprocs=8)
        assert result.busiest_mds_share() == 1.0

    def test_unique_dirs_spread_over_mdses(self):
        result = engine().run(MDTestConfig(20, directory_mode=MDTestPhase.UNIQUE_DIRS), nprocs=8)
        assert result.busiest_mds_share() == pytest.approx(0.5)

    def test_unique_dirs_scale_throughput(self):
        """The headline: ~2x creates/s with two MDSes once saturated."""
        shared = engine().run(MDTestConfig(40, directory_mode=MDTestPhase.SHARED_DIR), nprocs=32)
        unique = engine().run(MDTestConfig(40, directory_mode=MDTestPhase.UNIQUE_DIRS), nprocs=32)
        ratio = unique.rate(MetadataOp.CREATE) / shared.rate(MetadataOp.CREATE)
        assert ratio == pytest.approx(2.0, rel=0.15)

    def test_stat_faster_than_create(self):
        result = engine().run(MDTestConfig(50), nprocs=16)
        assert result.rate(MetadataOp.STAT) > result.rate(MetadataOp.CREATE)

    def test_phases_accounted(self):
        config = MDTestConfig(10)
        result = engine().run(config, nprocs=4)
        assert set(result.phase_seconds) == set(config.ops)
        assert result.total_seconds == pytest.approx(sum(result.phase_seconds.values()))
        assert sum(result.mds_ops.values()) == config.total_ops(4)

    def test_reproducible(self):
        a = engine(seed=5).run(MDTestConfig(20), nprocs=4, rep=1)
        b = engine(seed=5).run(MDTestConfig(20), nprocs=4, rep=1)
        assert a.phase_seconds == b.phase_seconds

    def test_rep_varies(self):
        a = engine(seed=5).run(MDTestConfig(20), nprocs=4, rep=1)
        b = engine(seed=5).run(MDTestConfig(20), nprocs=4, rep=2)
        assert a.phase_seconds != b.phase_seconds

    def test_nprocs_validation(self):
        with pytest.raises(ExperimentError):
            engine().run(MDTestConfig(10), nprocs=0)


class TestConcurrentGroups:
    def test_storm_slows_victim(self):
        from repro.workload.mdtest import MDTestPhase

        eng = engine()
        victim = ("victim", MDTestConfig(1, directory_mode=MDTestPhase.UNIQUE_DIRS), 32, 0.02)
        alone = eng.run_concurrent([victim])["victim"]
        storm = ("storm", MDTestConfig(200, directory_mode=MDTestPhase.SHARED_DIR), 128)
        contended = engine().run_concurrent([victim, storm])["victim"]
        assert contended > 1.5 * alone

    def test_delay_measured_from_group_start(self):
        eng = engine(service_jitter=0.0)
        undelayed = eng.run_concurrent([("a", MDTestConfig(5), 2)])["a"]
        delayed = engine(service_jitter=0.0).run_concurrent(
            [("a", MDTestConfig(5), 2, 1.0)]
        )["a"]
        assert delayed == pytest.approx(undelayed, rel=0.01)

    def test_all_groups_reported(self):
        finished = engine().run_concurrent(
            [("a", MDTestConfig(3), 2), ("b", MDTestConfig(3), 2)]
        )
        assert set(finished) == {"a", "b"}
        assert all(v > 0 for v in finished.values())

    def test_empty_groups_rejected(self):
        with pytest.raises(ExperimentError):
            engine().run_concurrent([])
