"""Run results and Equation 1."""

import pytest

from repro.engine.result import ApplicationResult, RunResult, aggregate_bandwidth
from repro.errors import AnalysisError
from repro.units import GiB


def app_result(app_id="a", start=0.0, end=32.0, volume=32 * GiB, **kw):
    defaults = dict(
        app_id=app_id,
        start_time=start,
        end_time=end,
        volume_bytes=float(volume),
        num_nodes=8,
        ppn=8,
        stripe_count=4,
        targets=(101, 201, 202, 203),
        placement=(1, 3),
    )
    defaults.update(kw)
    return ApplicationResult(**defaults)


class TestApplicationResult:
    def test_bandwidth(self):
        a = app_result(end=32.0)
        assert a.bandwidth_mib_s == pytest.approx(1024.0)
        assert a.duration == 32.0

    def test_placement_min_max(self):
        assert app_result(placement=(1, 3)).placement_min_max == (1, 3)
        assert app_result(placement=(0, 2)).placement_min_max == (0, 2)

    def test_balanced(self):
        assert app_result(placement=(2, 2)).balanced
        assert not app_result(placement=(1, 3)).balanced

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(AnalysisError):
            app_result(start=5.0, end=5.0)


class TestEquation1:
    def test_single_app_equals_own_bandwidth(self):
        a = app_result()
        assert aggregate_bandwidth([a]) == pytest.approx(a.bandwidth_mib_s)

    def test_paper_formula(self):
        """sum(vol) / (max(end) - min(start))."""
        a = app_result("a", start=0.0, end=40.0)
        b = app_result("b", start=2.0, end=50.0)
        expected = (2 * 32 * 1024) / (50.0 - 0.0)
        assert aggregate_bandwidth([a, b]) == pytest.approx(expected)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            aggregate_bandwidth([])


class TestRunResult:
    def test_queries(self):
        a, b = app_result("a"), app_result("b", end=48.0)
        run = RunResult(apps=(a, b), segments=5)
        assert run.app("b") is b
        assert run.makespan == 48.0
        assert run.aggregate_bandwidth_mib_s == pytest.approx((2 * 32 * 1024) / 48.0)
        with pytest.raises(AnalysisError):
            run.app("ghost")

    def test_single_accessor(self):
        run = RunResult(apps=(app_result(),), segments=1)
        assert run.single.app_id == "a"
        two = RunResult(apps=(app_result("a"), app_result("b")), segments=1)
        with pytest.raises(AnalysisError):
            _ = two.single

    def test_shared_targets(self):
        a = app_result("a", targets=(101, 201))
        b = app_result("b", targets=(201, 202))
        run = RunResult(apps=(a, b), segments=1)
        assert run.shared_targets() == {201}

    def test_duplicate_ids_rejected(self):
        with pytest.raises(AnalysisError):
            RunResult(apps=(app_result("a"), app_result("a")), segments=1)

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            RunResult(apps=(), segments=0)
