"""Units: parsing, formatting, conversions."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import UnitParseError
from repro.units import (
    GiB,
    KiB,
    MiB,
    TiB,
    bandwidth_mib_s,
    bytes_to_gib,
    bytes_to_mib,
    format_bandwidth,
    format_duration,
    format_size,
    gbit_s_to_mib_s,
    gib_to_bytes,
    mib_s_to_gbit_s,
    mib_to_bytes,
    parse_duration,
    parse_size,
)


class TestConstants:
    def test_binary_ladder(self):
        assert KiB == 1024
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB
        assert TiB == 1024 * GiB


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("32GiB", 32 * GiB),
            ("512 KiB", 512 * KiB),
            ("1m", MiB),
            ("1MiB", MiB),
            ("2g", 2 * GiB),
            ("10MB", 10_000_000),
            ("0.5GiB", GiB // 2),
            ("123", 123),
            ("123B", 123),
            ("1.8TB", 1_800_000_000_000),
        ],
    )
    def test_accepts(self, text, expected):
        assert parse_size(text) == expected

    def test_accepts_numbers(self):
        assert parse_size(4096) == 4096
        assert parse_size(4096.0) == 4096

    @pytest.mark.parametrize("text", ["", "GiB", "12XiB", "-3MiB", "1.5B"])
    def test_rejects(self, text):
        with pytest.raises(UnitParseError):
            parse_size(text)

    def test_rejects_fractional_bytes(self):
        with pytest.raises(UnitParseError):
            parse_size(12.5)

    @given(st.integers(min_value=0, max_value=2**50))
    def test_format_parse_roundtrip(self, nbytes):
        # format_size rounds; only exact multiples round-trip exactly.
        text = format_size(nbytes, precision=6)
        parsed = parse_size(text)
        assert parsed == pytest.approx(nbytes, rel=2e-6, abs=1)


class TestFormatSize:
    def test_picks_largest_unit(self):
        assert format_size(32 * GiB) == "32GiB"
        assert format_size(512 * KiB) == "512KiB"
        assert format_size(MiB) == "1MiB"
        assert format_size(100) == "100B"

    def test_negative(self):
        assert format_size(-MiB) == "-1MiB"

    def test_fractional(self):
        assert format_size(int(1.5 * GiB)) == "1.5GiB"


class TestDurations:
    @pytest.mark.parametrize(
        "text,expected",
        [("30min", 1800.0), ("1.5s", 1.5), ("250ms", 0.25), ("2h", 7200.0), (90, 90.0)],
    )
    def test_parse(self, text, expected):
        assert parse_duration(text) == pytest.approx(expected)

    def test_parse_rejects(self):
        with pytest.raises(UnitParseError):
            parse_duration("5 fortnights")
        with pytest.raises(UnitParseError):
            parse_duration(-1)

    @pytest.mark.parametrize(
        "seconds,expected",
        [(0, "0s"), (0.012, "12ms"), (2.5, "2.5s"), (60, "1min"), (200, "3min 20s")],
    )
    def test_format(self, seconds, expected):
        assert format_duration(seconds) == expected

    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (119.7, "2min"),  # the old code rendered "1min 60s"
            (119.4, "1min 59s"),
            (60.4, "1min"),
            (3599.6, "60min"),
            (61.0, "1min 1s"),
        ],
    )
    def test_format_carries_rounded_seconds(self, seconds, expected):
        assert format_duration(seconds) == expected

    @given(st.floats(min_value=60.0, max_value=1e6, allow_nan=False))
    def test_format_never_shows_60s(self, seconds):
        text = format_duration(seconds)
        assert "60s" not in text
        assert "min" in text

    @given(st.floats(min_value=1e-3, max_value=59.0, allow_nan=False))
    def test_format_parse_roundtrip_subminute(self, seconds):
        # Sub-minute renderings are single quantities parse_duration
        # accepts back; formatting rounds, so compare loosely.
        assert parse_duration(format_duration(seconds)) == pytest.approx(
            seconds, rel=0.05, abs=5e-4
        )


class TestConversions:
    def test_gbit_to_mib(self):
        # 10 Gbit/s ~ 1192 MiB/s raw: the paper's Ethernet ports.
        assert gbit_s_to_mib_s(10) == pytest.approx(1192.09, rel=1e-4)

    def test_gbit_roundtrip(self):
        assert mib_s_to_gbit_s(gbit_s_to_mib_s(100.0)) == pytest.approx(100.0)

    def test_bytes_mib_roundtrip(self):
        assert mib_to_bytes(bytes_to_mib(123456789)) == pytest.approx(123456789)

    def test_bytes_gib(self):
        assert bytes_to_gib(gib_to_bytes(32)) == pytest.approx(32)


class TestBandwidth:
    def test_simple(self):
        assert bandwidth_mib_s(32 * GiB, 32.0) == pytest.approx(1024.0)

    def test_zero_bytes(self):
        assert bandwidth_mib_s(0, 0) == 0.0

    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            bandwidth_mib_s(MiB, 0.0)

    def test_format(self):
        assert format_bandwidth(1234.56) == "1234.6 MiB/s"
