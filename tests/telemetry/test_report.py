"""The campaign dashboard over synthetic event streams."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry.report import CampaignReport, load_events


def run_end(rep, bw=1000.0, status="ok", exp_id="fig6", spec="fig6[s1]()", **extra):
    event = {
        "schema": 1, "seq": rep, "event": "run.end", "t": float(rep),
        "exp_id": exp_id, "scenario": "scenario1", "spec": spec, "rep": rep,
        "block": 0, "status": status, "bw_mib_s": bw if status == "ok" else None,
        "makespan_s": 30.0 if status == "ok" else None,
        "retries": 0, "complete": status == "ok",
        "error_type": None if status == "ok" else "SimulationError",
    }
    event.update(extra)
    return event


def fault(kind="target-offline", component="target:201"):
    return {"schema": 1, "seq": 0, "event": "fault.trigger", "t": 5.0,
            "kind": kind, "component": component, "multiplier": 0.0}


class TestLoadEvents:
    def test_loads_and_skips_blank_lines(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text(json.dumps(run_end(0)) + "\n\n" + json.dumps(run_end(1)) + "\n")
        assert len(load_events(path)) == 2

    def test_partial_final_line_tolerated(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text(json.dumps(run_end(0)) + "\n" + '{"schema": 1, "seq"')
        assert len(load_events(path)) == 1

    def test_partial_final_line_strict_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text('{"schema": 1, "seq"')
        with pytest.raises(TelemetryError):
            load_events(path, strict=True)

    def test_bad_interior_line_always_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text("{broken\n" + json.dumps(run_end(0)) + "\n")
        with pytest.raises(TelemetryError):
            load_events(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TelemetryError):
            load_events(tmp_path / "no.jsonl")


class TestCampaignReport:
    def test_progress_tallies_by_status(self):
        report = CampaignReport(
            [run_end(0), run_end(1), run_end(2, status="failed"),
             run_end(3, status="quarantined")]
        )
        (row,) = report.progress()
        assert row["runs"] == 4
        assert (row["ok"], row["failed"], row["quarantined"]) == (2, 1, 1)
        assert row["wall_s"] == pytest.approx(60.0)

    def test_bandwidth_groups_only_successes(self):
        report = CampaignReport([run_end(0, bw=900.0), run_end(1, status="failed")])
        groups = report.bandwidth_groups()
        assert list(groups.values()) == [[900.0]]

    def test_bimodality_flags_small_groups_undecided(self):
        report = CampaignReport([run_end(i) for i in range(3)])
        (row,) = report.bimodality_flags()
        assert row["bimodal"] is None and row["n"] == 3

    def test_bimodality_detected_on_separated_modes(self):
        lows = [880.0, 884.0, 888.0, 882.0, 886.0]
        highs = [1740.0, 1744.0, 1748.0, 1742.0, 1746.0]
        report = CampaignReport(
            [run_end(i, bw=v) for i, v in enumerate(lows + highs)]
        )
        (row,) = report.bimodality_flags()
        assert row["bimodal"] is True
        assert "BIMODAL" in report.render()

    def test_fault_summary(self):
        report = CampaignReport([fault(), fault(), fault(component="server:storage2")])
        assert report.fault_summary() == [
            ("target-offline", "server:storage2", 1),
            ("target-offline", "target:201", 2),
        ]

    def test_server_series_from_last_carrying_run(self):
        with_series = run_end(1, servers={"storage1": [[0.0, 10.0], [1.0, 20.0]]})
        report = CampaignReport([run_end(0), with_series])
        assert report.server_series() == {"storage1": [(0.0, 10.0), (1.0, 20.0)]}
        assert "per-server load" in report.render()

    def test_render_empty_stream(self):
        out = CampaignReport([]).render()
        assert "0 runs" in out and "warming up" in out

    def test_render_metrics_panel_from_snapshot(self):
        snapshot = {
            "schema": 1, "seq": 9, "event": "metrics.snapshot", "t": None,
            "metrics": {
                "runner.runs{status=ok}": {"type": "counter", "value": 2.0},
                "run.bandwidth_mib_s": {
                    "type": "histogram", "count": 2, "sum": 2000.0,
                    "min": 900.0, "max": 1100.0, "buckets": [[1024.0, 2]],
                    "quantiles": {"p50": 1000.0, "p90": 1080.0, "p99": 1098.0},
                },
            },
        }
        out = CampaignReport([run_end(0), snapshot]).render()
        assert "runner.runs{status=ok}" in out
        assert "p50=1e+03" in out

    def test_from_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text("\n".join(json.dumps(e) for e in [run_end(0), fault()]) + "\n")
        report = CampaignReport.from_jsonl(path)
        assert len(report.run_ends) == 1 and len(report.faults) == 1


def slo_event(seq, ok=True, burn=0.5):
    return {
        "schema": 1, "seq": seq, "event": "server.slo", "t": None,
        "window": 128, "queue_wait_p99_s": 0.02, "shed_rate": 0.0,
        "hit_ratio": 0.5, "burn_rate": burn, "ok": ok,
    }


class TestSLOPanel:
    def test_no_slo_events_means_no_panel(self):
        report = CampaignReport([run_end(0)])
        assert report.slo_summary() is None
        assert "service SLO" not in report.render()

    def test_summary_takes_last_sample_and_tallies_violations(self):
        report = CampaignReport(
            [slo_event(0), slo_event(1, ok=False, burn=3.0), slo_event(2)]
        )
        slo = report.slo_summary()
        assert slo["samples"] == 3
        assert slo["violations"] == 1
        assert slo["ok"] is True  # last sample recovered
        out = report.render()
        assert "service SLO: OK" in out
        assert "1/3 samples violated" in out

    def test_violated_state_renders_loudly(self):
        out = CampaignReport([slo_event(0, ok=False, burn=4.2)]).render()
        assert "service SLO: VIOLATED" in out
        assert "burn 4.20x" in out


class TestDegenerateSeriesPanel:
    def test_degenerate_series_notes_the_skip_instead_of_vanishing(self):
        # A single sample at t=0 spans no time: the plot cannot scale,
        # and the dashboard must say so rather than silently omit it.
        flat = run_end(0, servers={"storage1": [[0.0, 10.0]]})
        out = CampaignReport([flat]).render()
        assert "per-server load: panel skipped" in out
        assert "no positive range" in out
