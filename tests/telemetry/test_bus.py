"""The event bus, its sinks and the session lifecycle."""

import io
import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry.bus import (
    ConsoleSink,
    EventBus,
    JsonlSink,
    RingBufferSink,
    format_event,
    get_bus,
    session,
    set_bus,
)
from repro.telemetry.events import validate_jsonl


class TestEventBus:
    def test_inert_without_sinks(self):
        bus = EventBus()
        assert not bus.enabled and not bus.debug
        bus.emit("run.start", exp_id="x", scenario="s", spec="k", rep=0, block=0)
        # No sink saw it, no sequence number was burned.
        ring = bus.attach(RingBufferSink())
        bus.emit("fault.clear", t=1.0, kind="target-offline", component="target:201")
        assert [e["seq"] for e in ring.events] == [0]

    def test_envelope_fields(self):
        bus = EventBus()
        ring = bus.attach(RingBufferSink())
        bus.emit("fault.trigger", t=5.0, kind="k", component="c", multiplier=0.0)
        (event,) = ring.events
        assert event["schema"] == 1
        assert event["event"] == "fault.trigger"
        assert event["t"] == 5.0

    def test_debug_events_dropped_at_info_level(self):
        bus = EventBus(level="info")
        ring = bus.attach(RingBufferSink())
        bus.emit("flow.start", t=0.0, flow_id="f")
        assert ring.events == []
        debug_bus = EventBus(level="debug")
        ring2 = debug_bus.attach(RingBufferSink())
        debug_bus.emit("flow.start", t=0.0, flow_id="f")
        assert len(ring2.events) == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(TelemetryError):
            EventBus(level="verbose")

    def test_detach_unattached_sink_rejected(self):
        bus = EventBus()
        with pytest.raises(TelemetryError):
            bus.detach(RingBufferSink())

    def test_ring_capacity_and_select(self):
        sink = RingBufferSink(capacity=2)
        bus = EventBus()
        bus.attach(sink)
        for i in range(3):
            bus.emit("checkpoint.write", path=f"p{i}", records=i, failures=0)
        assert len(sink) == 2
        assert [e["path"] for e in sink.select("checkpoint.write")] == ["p1", "p2"]

    def test_bad_ring_capacity(self):
        with pytest.raises(TelemetryError):
            RingBufferSink(0)


class TestJsonlSink:
    def test_appends_compact_valid_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        bus = EventBus()
        bus.attach(JsonlSink(path))
        bus.emit("fault.trigger", t=5.0, kind="target-offline", component="target:201",
                 multiplier=0.0)
        bus.close()
        assert validate_jsonl(path) == []
        line = path.read_text().splitlines()[0]
        assert json.loads(line)["component"] == "target:201"

    def test_emit_after_close_rejected(self, tmp_path):
        sink = JsonlSink(tmp_path / "events.jsonl")
        sink.close()
        with pytest.raises(TelemetryError):
            sink.emit({"event": "x"})

    def test_creates_parent_directories(self, tmp_path):
        sink = JsonlSink(tmp_path / "deep" / "down" / "events.jsonl")
        sink.close()
        assert (tmp_path / "deep" / "down" / "events.jsonl").exists()


class TestConsoleSinkAndFormat:
    def test_console_sink_prints_one_liner(self):
        stream = io.StringIO()
        bus = EventBus()
        bus.attach(ConsoleSink(stream))
        bus.emit("fault.clear", t=10.0, kind="target-offline", component="target:201")
        out = stream.getvalue()
        assert "fault.clear" in out and "target:201" in out

    def test_format_event_hides_bulky_fields(self):
        event = {"schema": 1, "seq": 0, "event": "run.end", "t": 1.0,
                 "bw_mib_s": 1234.5678, "servers": {"s": []}}
        line = format_event(event)
        assert "bw_mib_s=1234.6" in line
        assert "servers" not in line


class TestSession:
    def test_installs_and_restores_bus(self, tmp_path):
        before = get_bus()
        with session(jsonl=tmp_path / "s.jsonl", ring=16) as bus:
            assert get_bus() is bus
            assert bus.enabled
            assert bus.ring is not None
        assert get_bus() is before

    def test_final_metrics_snapshot_emitted(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with session(jsonl=path) as bus:
            bus.metrics.counter("runner.runs", status="ok").inc()
        events = [json.loads(l) for l in path.read_text().splitlines()]
        assert events[-1]["event"] == "metrics.snapshot"
        assert events[-1]["metrics"]["runner.runs{status=ok}"]["value"] == 1.0

    def test_no_snapshot_without_metrics(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with session(jsonl=path):
            pass
        assert path.read_text() == ""

    def test_set_bus_returns_previous(self):
        original = get_bus()
        replacement = EventBus()
        assert set_bus(replacement) is original
        assert set_bus(original) is replacement
