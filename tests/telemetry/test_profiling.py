"""Span-based profiling: nesting, self-time, the flat hot-path API."""

import time

import pytest

from repro.errors import TelemetryError
from repro.telemetry.profiling import (
    SpanProfiler,
    get_profiler,
    profiling,
    set_profiler,
)


class TestSpanProfiler:
    def test_disabled_profiler_records_nothing(self):
        prof = SpanProfiler(enabled=False)
        with prof.span("a"):
            pass
        prof.record("b", 1.0)
        prof.count("c")
        assert len(prof) == 0
        assert prof.render() == "profile: no spans recorded"

    def test_spans_aggregate_by_name(self):
        prof = SpanProfiler(enabled=True)
        for _ in range(3):
            with prof.span("work"):
                pass
        (stats,) = prof.stats()
        assert stats.name == "work" and stats.calls == 3
        assert stats.total_s >= 0.0
        assert stats.min_s <= stats.max_s

    def test_self_time_excludes_children(self):
        prof = SpanProfiler(enabled=True)
        with prof.span("outer"):
            with prof.span("inner"):
                time.sleep(0.02)
        by_name = {s.name: s for s in prof.stats()}
        assert by_name["outer"].total_s >= by_name["inner"].total_s
        # Outer's self time is its total minus the inner span.
        assert by_name["outer"].self_s == pytest.approx(
            by_name["outer"].total_s - by_name["inner"].total_s, abs=1e-6
        )

    def test_record_and_count_flat_api(self):
        prof = SpanProfiler(enabled=True)
        prof.record("solve", 0.25)
        prof.record("solve", 0.75)
        prof.count("steps", 10)
        by_name = {s.name: s for s in prof.stats()}
        assert by_name["solve"].calls == 2
        assert by_name["solve"].total_s == pytest.approx(1.0)
        assert by_name["steps"].calls == 10
        assert by_name["steps"].total_s == 0.0

    def test_stats_sorted_by_total_time(self):
        prof = SpanProfiler(enabled=True)
        prof.record("cheap", 0.1)
        prof.record("dear", 0.9)
        assert [s.name for s in prof.stats()] == ["dear", "cheap"]

    def test_exception_inside_span_still_recorded(self):
        prof = SpanProfiler(enabled=True)
        with pytest.raises(RuntimeError):
            with prof.span("doomed"):
                raise RuntimeError("boom")
        assert prof.stats()[0].calls == 1

    def test_render_and_to_dict(self):
        prof = SpanProfiler(enabled=True)
        prof.record("fluid.solve", 0.5)
        out = prof.render()
        assert "fluid.solve" in out and "calls" in out
        data = prof.to_dict()
        assert data["spans"][0]["name"] == "fluid.solve"

    def test_clear(self):
        prof = SpanProfiler(enabled=True)
        prof.record("x", 1.0)
        prof.clear()
        assert len(prof) == 0


class TestProcessWideProfiler:
    def test_default_profiler_is_disabled(self):
        assert get_profiler().enabled is False

    def test_profiling_scope_installs_and_restores(self):
        before = get_profiler()
        with profiling(True) as prof:
            assert get_profiler() is prof and prof.enabled
            with get_profiler().span("inside"):
                pass
            assert len(prof) == 1
        assert get_profiler() is before

    def test_set_profiler_rejects_non_profiler(self):
        with pytest.raises(TelemetryError):
            set_profiler(object())
