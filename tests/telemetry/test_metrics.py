"""Counters, gauges, histograms and the P² streaming quantiles.

The merge/quantile edge cases (empty, single-sample, NaN rejection,
merge exactness) are property-tested with hypothesis, as the histogram
is the one telemetry structure whose correctness the dashboard's
numbers depend on.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TelemetryError
from repro.telemetry.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    P2Quantile,
)

finite_values = st.floats(
    min_value=1e-3, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative_and_nonfinite(self):
        c = Counter()
        with pytest.raises(TelemetryError):
            c.inc(-1.0)
        with pytest.raises(TelemetryError):
            c.inc(math.nan)

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.inc(3.0)
        g.dec(1.0)
        assert g.value == 2.0
        g.set(-5.0)
        assert g.value == -5.0

    def test_gauge_rejects_nan(self):
        with pytest.raises(TelemetryError):
            Gauge().set(math.nan)


class TestP2Quantile:
    def test_empty_stream_raises(self):
        with pytest.raises(TelemetryError):
            P2Quantile(0.5).value

    def test_single_sample_is_exact(self):
        q = P2Quantile(0.9)
        q.observe(42.0)
        assert q.value == 42.0

    def test_exact_below_five_samples(self):
        q = P2Quantile(0.5)
        for v in (5.0, 1.0, 3.0, 2.0):
            q.observe(v)
        assert q.value == float(np.quantile([5.0, 1.0, 3.0, 2.0], 0.5))

    def test_rejects_nan(self):
        with pytest.raises(TelemetryError):
            P2Quantile(0.5).observe(math.nan)

    def test_bad_p_rejected(self):
        with pytest.raises(TelemetryError):
            P2Quantile(0.0)
        with pytest.raises(TelemetryError):
            P2Quantile(1.0)

    def test_tracks_normal_median_closely(self):
        rng = np.random.default_rng(7)
        samples = rng.normal(100.0, 15.0, size=5000)
        q = P2Quantile(0.5)
        for v in samples:
            q.observe(float(v))
        assert abs(q.value - float(np.median(samples))) < 1.0

    @given(st.lists(finite_values, min_size=5, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_estimate_stays_within_observed_range(self, values):
        q = P2Quantile(0.9)
        for v in values:
            q.observe(v)
        assert min(values) <= q.value <= max(values)


class TestHistogramBasics:
    def test_empty_histogram_has_no_mean_or_quantile(self):
        h = Histogram()
        with pytest.raises(TelemetryError):
            h.mean
        with pytest.raises(TelemetryError):
            h.quantile(0.5)
        with pytest.raises(TelemetryError):
            h.streaming_quantile(0.5)

    def test_single_sample_quantiles_are_that_sample(self):
        h = Histogram()
        h.observe(37.5)
        for p in (0.0, 0.5, 0.99, 1.0):
            assert h.quantile(p) == 37.5
        assert h.streaming_quantile(0.5) == 37.5
        assert h.mean == 37.5

    def test_rejects_nan_and_inf(self):
        h = Histogram()
        with pytest.raises(TelemetryError):
            h.observe(math.nan)
        with pytest.raises(TelemetryError):
            h.observe(math.inf)
        assert h.count == 0

    def test_bucket_bounds_validated(self):
        with pytest.raises(TelemetryError):
            Histogram(buckets=())
        with pytest.raises(TelemetryError):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(TelemetryError):
            Histogram(buckets=(1.0, math.inf))

    def test_overflow_bin_catches_huge_values(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(1e12)
        assert h.counts[-1] == 1

    def test_quantile_clamped_to_observed_range(self):
        h = Histogram()
        for v in (10.0, 20.0, 30.0):
            h.observe(v)
        assert 10.0 <= h.quantile(0.01)
        assert h.quantile(1.0) <= 30.0

    def test_snapshot_is_json_safe(self):
        import json

        h = Histogram(buckets=(1.0, 2.0))
        h.observe(1e12)  # lands in the infinite overflow bin
        snap = h.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["buckets"][-1][0] is None


class TestHistogramMerge:
    @given(
        st.lists(finite_values, min_size=0, max_size=80),
        st.lists(finite_values, min_size=0, max_size=80),
    )
    @settings(max_examples=60, deadline=None)
    def test_merge_is_bucket_exact(self, left, right):
        one = Histogram()
        for v in left + right:
            one.observe(v)
        a, b = Histogram(), Histogram()
        for v in left:
            a.observe(v)
        for v in right:
            b.observe(v)
        a.merge(b)
        assert a.counts == one.counts
        assert a.count == one.count
        assert a.sum == pytest.approx(one.sum)
        if one.count:
            assert a.min == one.min and a.max == one.max
            # Post-merge streaming view answers from the (exact) buckets.
            assert a.streaming_quantile(0.5) == one.quantile(0.5)

    def test_merge_rejects_different_buckets(self):
        with pytest.raises(TelemetryError):
            Histogram(buckets=(1.0, 2.0)).merge(Histogram(buckets=(1.0, 3.0)))

    def test_merge_of_empties_stays_empty(self):
        a = Histogram().merge(Histogram())
        assert a.count == 0
        with pytest.raises(TelemetryError):
            a.quantile(0.5)

    def test_merge_into_empty_adopts_other(self):
        a, b = Histogram(), Histogram()
        b.observe(5.0)
        a.merge(b)
        assert a.count == 1 and a.min == 5.0 and a.max == 5.0


class TestMetricsRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("runner.runs", status="ok") is reg.counter(
            "runner.runs", status="ok"
        )
        assert reg.counter("runner.runs", status="ok") is not reg.counter(
            "runner.runs", status="failed"
        )

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TelemetryError):
            reg.gauge("x")

    def test_rendered_names_sorted_and_labelled(self):
        reg = MetricsRegistry()
        reg.counter("b.metric")
        reg.counter("a.metric", engine="fluid")
        names = [name for name, _ in reg]
        assert names == ["a.metric{engine=fluid}", "b.metric"]

    def test_registry_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        b.histogram("h").observe(1.0)
        a.merge(b)
        assert a.counter("n").value == 5.0
        assert a.histogram("h").count == 1

    def test_snapshot_roundtrips_through_json(self):
        import json

        reg = MetricsRegistry()
        reg.counter("runner.runs", status="ok").inc()
        reg.gauge("faults.active").set(2.0)
        reg.histogram("run.bandwidth_mib_s").observe(880.0)
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["runner.runs{status=ok}"]["type"] == "counter"
        assert snap["run.bandwidth_mib_s"]["count"] == 1

    def test_render_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.histogram("h").observe(1.0)
        out = reg.render()
        assert "a" in out and "p50" in out

    def test_default_buckets_cover_bandwidths_and_bytes(self):
        assert DEFAULT_BUCKETS[0] == 1.0
        assert DEFAULT_BUCKETS[-1] >= 1e12
