"""The event taxonomy and its JSONL schema validators."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry.events import (
    DEBUG_EVENTS,
    EVENT_TYPES,
    SCHEMA_VERSION,
    validate_event,
    validate_jsonl,
)


def make(event_type, **fields):
    return {"schema": SCHEMA_VERSION, "seq": 0, "event": event_type, "t": None, **fields}


RUN_END = dict(
    exp_id="fig6",
    scenario="scenario1",
    spec="fig6[scenario1]()",
    rep=0,
    block=0,
    status="ok",
    bw_mib_s=1234.5,
    makespan_s=30.0,
    retries=0,
    complete=True,
    error_type=None,
)


class TestValidateEvent:
    def test_valid_run_end(self):
        assert validate_event(make("run.end", **RUN_END)) == []

    def test_every_declared_type_has_field_spec(self):
        assert "run.start" in EVENT_TYPES and "fault.trigger" in EVENT_TYPES
        assert DEBUG_EVENTS <= set(EVENT_TYPES)

    def test_non_object_rejected(self):
        assert validate_event([1, 2, 3])
        assert validate_event("run.end")

    def test_unknown_type_rejected(self):
        problems = validate_event(make("meteor.strike"))
        assert any("meteor.strike" in p for p in problems)

    def test_missing_required_field_rejected(self):
        payload = dict(RUN_END)
        del payload["status"]
        problems = validate_event(make("run.end", **payload))
        assert any("status" in p for p in problems)

    def test_bool_is_not_a_number(self):
        payload = dict(RUN_END, bw_mib_s=True)
        assert validate_event(make("run.end", **payload))

    def test_extra_field_rejected(self):
        payload = dict(RUN_END, surprise=1)
        problems = validate_event(make("run.end", **payload))
        assert any("surprise" in p for p in problems)

    def test_bad_status_rejected(self):
        payload = dict(RUN_END, status="exploded")
        problems = validate_event(make("run.end", **payload))
        assert any("status" in p for p in problems)

    def test_optional_fields_accepted(self):
        payload = dict(RUN_END, servers={"storage1": [[0.0, 1.0]]})
        assert validate_event(make("run.end", **payload)) == []


class TestValidateJsonl:
    def test_valid_stream(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with path.open("w") as fh:
            fh.write(json.dumps(make("run.end", **RUN_END)) + "\n")
            fh.write("\n")  # blank lines are fine
        assert validate_jsonl(path) == []

    def test_problems_carry_line_numbers(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with path.open("w") as fh:
            fh.write(json.dumps(make("run.end", **RUN_END)) + "\n")
            fh.write("{not json\n")
            fh.write(json.dumps(make("wat.is.this")) + "\n")
        problems = validate_jsonl(path)
        assert any(p.startswith("line 2:") for p in problems)
        assert any(p.startswith("line 3:") for p in problems)

    def test_unreadable_file_raises(self, tmp_path):
        with pytest.raises(TelemetryError):
            validate_jsonl(tmp_path / "missing.jsonl")
