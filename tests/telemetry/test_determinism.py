"""Telemetry must never perturb simulation results.

The design contract (telemetry/__init__ docstring): with sinks attached
— even at debug level, even with profiling on — every RunResult is
byte-identical to the telemetry-off run.  These tests prove it with the
replay fingerprints and the cross-engine conformance goldens.
"""

from repro.engine.base import EngineOptions
from repro.engine.des_runner import DESEngine
from repro.engine.fluid_runner import FluidEngine
from repro.telemetry.bus import session
from repro.telemetry.events import validate_event
from repro.telemetry.profiling import profiling
from repro.units import MiB
from repro.verify.replay import result_fingerprint
from repro.workload.generator import single_application


def run_once(calib, topo, engine_cls=FluidEngine, rep=1):
    engine = engine_cls(
        calib, topo, calib.deployment(stripe_count=4), seed=0, options=EngineOptions()
    )
    app = single_application(topo, 2, ppn=4, total_bytes=128 * MiB)
    return engine.run([app], rep=rep)


class TestByteIdentity:
    def test_fluid_fingerprint_unchanged_by_debug_telemetry(self, calib_s1, topo_s1):
        baseline = result_fingerprint(run_once(calib_s1, topo_s1))
        with session(ring=65536, level="debug") as bus:
            observed = result_fingerprint(run_once(calib_s1, topo_s1))
            assert bus.ring.events, "debug session should have captured events"
        assert observed == baseline

    def test_des_fingerprint_unchanged_by_debug_telemetry(self, calib_s1, topo_s1):
        baseline = result_fingerprint(run_once(calib_s1, topo_s1, DESEngine))
        with session(ring=65536, level="debug"):
            observed = result_fingerprint(run_once(calib_s1, topo_s1, DESEngine))
        assert observed == baseline

    def test_fingerprint_unchanged_by_profiling(self, calib_s1, topo_s1):
        baseline = result_fingerprint(run_once(calib_s1, topo_s1))
        with profiling(True) as prof:
            observed = result_fingerprint(run_once(calib_s1, topo_s1))
            assert any(s.name == "fluid.solve" for s in prof.stats())
        assert observed == baseline

    def test_conformance_goldens_hold_with_sinks_attached(self, tmp_path):
        from repro.verify.conformance import RunSpec, run_conformance

        tiny = (RunSpec(name="tiny", num_nodes=2, ppn=2, total_mib=64),)
        golden = tmp_path / "golden.json"
        # Pin goldens with telemetry off, verify with everything on.
        pinned = run_conformance(specs=tiny, golden_path=golden, update_golden=True)
        assert pinned.ok
        with session(ring=65536, level="debug"), profiling(True):
            report = run_conformance(specs=tiny, golden_path=golden)
        assert report.ok, [e for c in report.failures for e in c.golden_errors]


class TestEmittedStreamQuality:
    def test_every_engine_event_is_schema_valid(self, calib_s1, topo_s1):
        with session(ring=65536, level="debug") as bus:
            run_once(calib_s1, topo_s1)
            events = bus.ring.events
        assert events
        problems = [p for e in events for p in validate_event(e)]
        assert problems == []
        kinds = {e["event"] for e in events}
        assert "flow.start" in kinds and "segment.solve" in kinds

    def test_engine_metrics_published(self, calib_s1, topo_s1):
        with session(ring=16) as bus:
            run_once(calib_s1, topo_s1)
            segments = bus.metrics.counter("engine.segments_solved", engine="fluid")
            iterations = bus.metrics.counter("engine.solver_iterations", engine="fluid")
            ost_bytes = bus.metrics.histogram("ost.bytes_written")
        assert segments.value > 0
        assert iterations.value >= segments.value
        assert ost_bytes.count > 0

    def test_replay_of_event_stream_is_deterministic(self, calib_s1, topo_s1):
        def capture():
            with session(ring=65536, level="debug") as bus:
                run_once(calib_s1, topo_s1)
                # The envelope carries no wall-clock fields by design, so
                # two identical runs produce identical event streams.
                return [dict(e) for e in bus.ring.events]

        assert capture() == capture()
