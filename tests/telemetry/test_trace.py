"""Unit tests for the deterministic trace context and flight recorder."""

import threading

from repro.telemetry.bus import session
from repro.telemetry.trace import (
    SPAN_NAMES,
    TRACE_ID_BYTES,
    FlightRecorder,
    TraceContext,
    current_trace,
    root_context,
    span_id_for,
    trace_id_for,
    trace_scope,
)


class TestIds:
    def test_trace_id_is_deterministic_and_sized(self):
        a = trace_id_for("f" * 64, 3)
        assert a == trace_id_for("f" * 64, 3)
        assert len(a) == TRACE_ID_BYTES
        assert int(a, 16) >= 0  # hex

    def test_trace_id_varies_with_every_identity_component(self):
        base = trace_id_for("abc", 0, attempt=0)
        assert trace_id_for("abd", 0, attempt=0) != base
        assert trace_id_for("abc", 1, attempt=0) != base
        assert trace_id_for("abc", 0, attempt=1) != base

    def test_span_ids_are_distinct_per_name(self):
        trace = trace_id_for("abc", 0)
        ids = {span_id_for(trace, name) for name in SPAN_NAMES}
        assert len(ids) == len(SPAN_NAMES)

    def test_root_context_is_the_job_span(self):
        ctx = root_context("abc", 2)
        assert ctx.trace == trace_id_for("abc", 2)
        assert ctx.span == span_id_for(ctx.trace, "job")
        assert ctx.parent is None

    def test_child_context_parents_to_its_creator(self):
        root = root_context("abc", 0)
        run = root.child("run")
        assert run.trace == root.trace
        assert run.span == span_id_for(root.trace, "run")
        assert run.parent == root.span
        cache = run.child("cache")
        assert cache.parent == run.span


class TestScope:
    def test_scopes_nest_and_unwind(self):
        assert current_trace() is None
        root = root_context("abc", 0)
        with trace_scope(root):
            assert current_trace() is root
            with trace_scope(root.child("run")) as inner:
                assert current_trace() is inner
            assert current_trace() is root
        assert current_trace() is None

    def test_none_scope_is_a_noop(self):
        with trace_scope(None) as ctx:
            assert ctx is None
            assert current_trace() is None

    def test_scope_unwinds_on_exception(self):
        try:
            with trace_scope(root_context("abc", 0)):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert current_trace() is None

    def test_scope_is_thread_local(self):
        seen = {}

        def probe():
            seen["other"] = current_trace()

        with trace_scope(root_context("abc", 0)):
            t = threading.Thread(target=probe)
            t.start()
            t.join()
        assert seen["other"] is None


class TestBusStamping:
    def test_tracing_session_stamps_ambient_context(self):
        with session(ring=64, trace=True) as bus:
            with trace_scope(root_context("abc", 0).child("run")):
                bus.emit("server.start", host="h", port=1, workers=1)
        (event,) = [e for e in bus.ring.events if e["event"] == "server.start"]
        root = root_context("abc", 0)
        assert event["trace"] == root.trace
        assert event["span"] == span_id_for(root.trace, "run")
        assert event["parent"] == root.span

    def test_payload_ids_win_over_ambient_ids(self):
        # Replayed events keep their recorded trace, even inside a scope.
        with session(ring=64, trace=True) as bus:
            with trace_scope(root_context("abc", 0)):
                bus.emit("server.start", host="h", port=1, workers=1, trace="recorded")
        (event,) = [e for e in bus.ring.events if e["event"] == "server.start"]
        assert event["trace"] == "recorded"

    def test_trace_off_session_never_stamps(self):
        with session(ring=64) as bus:
            assert not bus.tracing
            with trace_scope(root_context("abc", 0)):
                bus.emit("server.start", host="h", port=1, workers=1)
        (event,) = [e for e in bus.ring.events if e["event"] == "server.start"]
        assert "trace" not in event and "span" not in event

    def test_session_attaches_a_flight_recorder_by_default(self):
        with session(ring=8) as bus:
            assert isinstance(bus.flight, FlightRecorder)
            bus.emit("server.start", host="h", port=1, workers=1)
            assert len(bus.flight) == 1
        with session(ring=8, flight=0) as bus:
            assert bus.flight is None


class TestFlightRecorder:
    def test_ring_keeps_only_the_tail(self):
        rec = FlightRecorder(capacity=3)
        for i in range(5):
            rec.emit({"event": "e", "i": i})
        assert [e["i"] for e in rec.last()] == [2, 3, 4]
        assert [e["i"] for e in rec.last(2)] == [3, 4]

    def test_for_trace_filters_by_stamped_id(self):
        rec = FlightRecorder(capacity=8)
        rec.emit({"event": "a", "trace": "t1"})
        rec.emit({"event": "b", "trace": "t2"})
        rec.emit({"event": "c", "trace": "t1"})
        rec.emit({"event": "d"})
        assert [e["event"] for e in rec.for_trace("t1")] == ["a", "c"]
        assert [e["event"] for e in rec.for_trace(None)] == ["a", "b", "c", "d"]
        assert [e["event"] for e in rec.for_trace("t1", limit=1)] == ["c"]
