"""Span-tree reconstruction, Chrome export and completeness checking."""

import json

import pytest

from repro.errors import TelemetryError
from repro.telemetry.trace import span_id_for, trace_id_for
from repro.telemetry.traceview import (
    check_traces,
    chrome_trace,
    collect_traces,
    load_streams,
    render_timeline,
)

FP = "a" * 64
TRACE = trace_id_for(FP, 0)


def _chain(trace=TRACE, job=FP, rep=0, complete=True):
    events = [
        {"event": "job.submit", "trace": trace, "job": job, "rep": rep},
        {"event": "server.admit", "trace": trace, "job": job, "rep": rep},
        {
            "event": "server.lease",
            "trace": trace,
            "job": job,
            "rep": rep,
            "queue_wait_s": 0.25,
        },
        {
            "event": "trace.span",
            "trace": trace,
            "name": "cache",
            "phase": "end",
            "status": "miss",
            "elapsed_s": 0.5,
        },
    ]
    if complete:
        events.append(
            {
                "event": "server.complete",
                "trace": trace,
                "job": job,
                "rep": rep,
                "status": "ok",
                "cached": False,
                "elapsed_s": 0.75,
            }
        )
    return events


def _write_stream(path, events):
    path.write_text("".join(json.dumps(e) + "\n" for e in events))
    return path


class TestLoadStreams:
    def test_merges_files_in_order_and_tags_source(self, tmp_path):
        a = _write_stream(tmp_path / "a.jsonl", [{"event": "x"}])
        b = _write_stream(tmp_path / "b.jsonl", [{"event": "y"}])
        events = load_streams([a, b])
        assert [e["event"] for e in events] == ["x", "y"]
        assert [e["_src"] for e in events] == ["a.jsonl", "b.jsonl"]
        assert [e["_idx"] for e in events] == [0, 1]

    def test_directory_expands_to_sorted_jsonl(self, tmp_path):
        _write_stream(tmp_path / "b.jsonl", [{"event": "y"}])
        _write_stream(tmp_path / "a.jsonl", [{"event": "x"}])
        events = load_streams([tmp_path])
        assert [e["_src"] for e in events] == ["a.jsonl", "b.jsonl"]

    def test_torn_tail_lines_are_tolerated(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text(json.dumps({"event": "x"}) + "\n" + '{"event": "tor')
        assert [e["event"] for e in load_streams([path])] == ["x"]

    def test_no_streams_is_an_error(self, tmp_path):
        with pytest.raises(TelemetryError):
            load_streams([tmp_path / "empty-dir-that-does-not-exist.jsonl" / ".."])
        with pytest.raises(TelemetryError):
            load_streams([])


class TestCollectTraces:
    def test_groups_by_trace_and_extracts_milestones(self, tmp_path):
        other = trace_id_for(FP, 1)
        stream = _chain() + _chain(trace=other, rep=1)
        path = _write_stream(tmp_path / "s.jsonl", stream)
        traces = collect_traces(load_streams([path]))
        assert [t.trace_id for t in traces] == [TRACE, other]
        first = traces[0]
        assert first.job == FP and first.rep == 0
        assert first.admitted
        assert first.status == "ok"
        assert first.duration("server.lease", "queue_wait_s") == 0.25
        assert first.duration("server.complete", "elapsed_s") == 0.75

    def test_unstamped_events_are_ignored(self, tmp_path):
        path = _write_stream(
            tmp_path / "s.jsonl", [{"event": "server.start"}] + _chain()
        )
        traces = collect_traces(load_streams([path]))
        assert len(traces) == 1
        assert all(e.get("trace") == TRACE for e in traces[0].events)

    def test_first_milestone_wins_on_resubmission(self, tmp_path):
        stream = _chain() + [
            {"event": "job.submit", "trace": TRACE, "job": FP, "rep": 0}
        ]
        path = _write_stream(tmp_path / "s.jsonl", stream)
        (trace,) = collect_traces(load_streams([path]))
        assert trace.milestones["job.submit"]["_idx"] == 0

    def test_incomplete_job_has_incomplete_status(self, tmp_path):
        path = _write_stream(tmp_path / "s.jsonl", _chain(complete=False))
        (trace,) = collect_traces(load_streams([path]))
        assert trace.status == "incomplete"


class TestRenderTimeline:
    def test_renders_breakdown_and_milestones(self, tmp_path):
        path = _write_stream(tmp_path / "s.jsonl", _chain())
        text = render_timeline(collect_traces(load_streams([path])))
        assert TRACE in text
        assert "queue-wait 0.250s" in text
        assert "run 0.750s" in text
        assert "cache miss (0.500s)" in text
        assert "server.lease" in text and "[s.jsonl]" in text

    def test_empty_input_explains_itself(self):
        assert "--trace" in render_timeline([])


class TestChromeTrace:
    def test_export_is_valid_and_spans_carry_span_ids(self, tmp_path):
        path = _write_stream(tmp_path / "s.jsonl", _chain())
        doc = chrome_trace(collect_traces(load_streams([path])))
        # Round-trips through JSON (the CLI writes exactly this).
        doc = json.loads(json.dumps(doc))
        events = doc["traceEvents"]
        names = [e["name"] for e in events if e["ph"] == "X"]
        assert names == ["job", "queue", "run", "cache"]
        by_name = {e["name"]: e for e in events if e["ph"] == "X"}
        assert by_name["run"]["args"]["span"] == span_id_for(TRACE, "run")
        assert by_name["run"]["args"]["elapsed_s"] == 0.75
        assert by_name["queue"]["args"]["queue_wait_s"] == 0.25
        assert all(e["dur"] >= 1 for e in events if e["ph"] == "X")
        meta = [e for e in events if e["ph"] == "M"]
        assert meta and meta[0]["args"]["name"].startswith("job ")

    def test_one_tid_row_per_job(self, tmp_path):
        stream = _chain() + _chain(trace=trace_id_for(FP, 1), rep=1)
        path = _write_stream(tmp_path / "s.jsonl", stream)
        doc = chrome_trace(collect_traces(load_streams([path])))
        tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert len(tids) == 2


class TestCheckTraces:
    def test_complete_admitted_chain_passes(self, tmp_path):
        path = _write_stream(tmp_path / "s.jsonl", _chain())
        assert check_traces(collect_traces(load_streams([path]))) == []

    def test_admitted_but_unfinished_job_is_reported(self, tmp_path):
        path = _write_stream(tmp_path / "s.jsonl", _chain(complete=False))
        problems = check_traces(collect_traces(load_streams([path])))
        assert len(problems) == 1
        assert "server.complete" in problems[0]

    def test_unadmitted_job_is_not_held_to_the_chain(self, tmp_path):
        events = [{"event": "job.submit", "trace": TRACE, "job": FP, "rep": 0}]
        path = _write_stream(tmp_path / "s.jsonl", events)
        assert check_traces(collect_traces(load_streams([path]))) == []
