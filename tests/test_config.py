"""System configuration serialization."""

import json

import pytest

from repro.beegfs.filesystem import plafrim_deployment
from repro.calibration.plafrim import scenario1, scenario2
from repro.config import (
    calibration_from_dict,
    calibration_to_dict,
    deployment_from_dict,
    deployment_to_dict,
    load_system,
    save_system,
)
from repro.errors import ConfigError


class TestCalibrationRoundTrip:
    @pytest.mark.parametrize("factory", [scenario1, scenario2])
    def test_roundtrip_identity(self, factory):
        original = factory()
        restored = calibration_from_dict(calibration_to_dict(original))
        assert restored == original

    def test_dict_is_json_safe(self):
        text = json.dumps(calibration_to_dict(scenario1()))
        assert "scenario1" in text

    def test_missing_key_rejected(self):
        data = calibration_to_dict(scenario1())
        del data["pool"]
        with pytest.raises(ConfigError):
            calibration_from_dict(data)

    def test_unknown_field_rejected(self):
        data = calibration_to_dict(scenario1())
        data["client"]["warp_drive"] = 9
        with pytest.raises(ConfigError):
            calibration_from_dict(data)

    def test_invalid_value_rejected(self):
        data = calibration_to_dict(scenario1())
        data["san"]["base_mib_s"] = -1
        with pytest.raises(Exception):
            calibration_from_dict(data)


class TestDeploymentRoundTrip:
    def test_roundtrip_identity(self):
        original = plafrim_deployment(keep_data=False)
        restored = deployment_from_dict(deployment_to_dict(original))
        assert restored == original

    def test_defaults_filled(self):
        restored = deployment_from_dict({"servers": [["s1", [1, 2]], ["s2", [3, 4]]]})
        assert restored.default_chooser == "roundrobin"
        assert restored.num_targets == 4


class TestFiles:
    def test_save_load_full_system(self, tmp_path):
        path = tmp_path / "systems" / "plafrim.json"
        save_system(path, scenario2(), plafrim_deployment(keep_data=False))
        calibration, deployment = load_system(path)
        assert calibration == scenario2()
        assert deployment == plafrim_deployment(keep_data=False)

    def test_save_without_deployment(self, tmp_path):
        path = tmp_path / "calib-only.json"
        save_system(path, scenario1())
        calibration, deployment = load_system(path)
        assert calibration == scenario1()
        assert deployment is None

    def test_loaded_calibration_is_usable(self, tmp_path):
        """A restored system drives the engine end to end."""
        from repro.engine.base import EngineOptions
        from repro.engine.fluid_runner import FluidEngine
        from repro.units import GiB
        from repro.workload.generator import single_application

        path = tmp_path / "system.json"
        save_system(path, scenario1(), plafrim_deployment(keep_data=False))
        calibration, deployment = load_system(path)
        topology = calibration.platform(4)
        engine = FluidEngine(
            calibration, topology, deployment, seed=0,
            options=EngineOptions(noise_enabled=False),
        )
        result = engine.run(
            [single_application(topology, 4, ppn=8, total_bytes=4 * GiB)], rep=0
        )
        assert result.single.bandwidth_mib_s > 1000

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigError):
            load_system(path)
        path.write_text("{}")
        with pytest.raises(ConfigError):
            load_system(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            load_system(tmp_path / "nope.json")
