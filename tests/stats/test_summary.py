"""Descriptive summaries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.stats.summary import describe, mean_ci


class TestDescribe:
    def test_known_values(self):
        s = describe([1, 2, 3, 4, 5])
        assert s.n == 5
        assert s.mean == 3.0
        assert s.median == 3.0
        assert s.minimum == 1 and s.maximum == 5
        assert s.std == pytest.approx(np.std([1, 2, 3, 4, 5], ddof=1))
        assert s.spread == 4.0

    def test_single_value(self):
        s = describe([7.0])
        assert s.std == 0.0 and s.mean == 7.0

    def test_cv(self):
        assert describe([90, 110]).cv == pytest.approx(np.std([90, 110], ddof=1) / 100)
        with pytest.raises(AnalysisError):
            describe([-1, 1]).cv

    def test_rejects_bad_input(self):
        with pytest.raises(AnalysisError):
            describe([])
        with pytest.raises(AnalysisError):
            describe([1.0, float("nan")])

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_order_invariants(self, values):
        s = describe(values)
        assert s.minimum <= s.q1 <= s.median <= s.q3 <= s.maximum
        assert s.minimum <= s.mean <= s.maximum
        assert s.iqr >= 0

    def test_as_dict(self):
        d = describe([1, 2, 3]).as_dict()
        assert d["n"] == 3 and "q1" in d


class TestMeanCI:
    def test_contains_mean(self):
        mean, low, high = mean_ci([10, 12, 14, 16])
        assert low <= mean <= high
        assert mean == 13.0

    def test_tightens_with_samples(self):
        rng = np.random.default_rng(0)
        small = rng.normal(100, 10, 10)
        large = rng.normal(100, 10, 1000)
        _, lo_s, hi_s = mean_ci(small)
        _, lo_l, hi_l = mean_ci(large)
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_single_sample_degenerate(self):
        mean, low, high = mean_ci([5.0])
        assert mean == low == high == 5.0

    def test_confidence_bounds_checked(self):
        with pytest.raises(AnalysisError):
            mean_ci([1, 2], confidence=1.5)

    def test_coverage_simulation(self):
        """~95% of intervals should contain the true mean."""
        rng = np.random.default_rng(42)
        hits = 0
        trials = 300
        for _ in range(trials):
            sample = rng.normal(50, 5, 20)
            _, low, high = mean_ci(sample, confidence=0.95)
            hits += low <= 50 <= high
        assert 0.90 <= hits / trials <= 0.99
