"""Boxplot statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.stats.boxplot import boxplot_stats, grouped_boxplots


class TestBoxplotStats:
    def test_known_quartiles(self):
        b = boxplot_stats(range(1, 101))
        assert b.median == pytest.approx(50.5)
        assert b.q1 == pytest.approx(25.75)
        assert b.q3 == pytest.approx(75.25)
        assert b.outliers == ()
        assert b.n == 100

    def test_outlier_detection(self):
        data = list(np.ones(20)) + [100.0]
        b = boxplot_stats(data)
        assert b.outliers == (100.0,)
        assert b.whisker_high == 1.0

    def test_whiskers_clamped_to_data(self):
        b = boxplot_stats([1, 2, 3, 4, 100])
        assert b.whisker_low >= 1
        assert b.whisker_high <= 100

    def test_zero_whisker_factor(self):
        b = boxplot_stats([1, 2, 3, 4, 5], whisker=0.0)
        assert b.whisker_low == b.q1
        assert b.whisker_high == b.q3

    def test_validation(self):
        with pytest.raises(AnalysisError):
            boxplot_stats([])
        with pytest.raises(AnalysisError):
            boxplot_stats([1.0, np.inf])
        with pytest.raises(AnalysisError):
            boxplot_stats([1, 2], whisker=-1)

    @given(st.lists(st.floats(-1e4, 1e4), min_size=4, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_invariants(self, values):
        b = boxplot_stats(values)
        assert b.whisker_low <= b.q1 <= b.median <= b.q3 <= b.whisker_high
        # Outliers lie strictly outside the whiskers.
        for o in b.outliers:
            assert o < b.whisker_low or o > b.whisker_high
        # Every sample is accounted for.
        inside = sum(1 for v in values if b.whisker_low <= v <= b.whisker_high)
        assert inside + len(b.outliers) == len(values)


class TestGrouped:
    def test_keys_preserved(self):
        groups = grouped_boxplots({"(1,3)": [1, 2, 3, 4], "(2,2)": [5, 6, 7, 8]})
        assert set(groups) == {"(1,3)", "(2,2)"}
        assert groups["(2,2)"].median == 6.5

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            grouped_boxplots({})
