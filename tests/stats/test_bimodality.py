"""Bi-modality detection: the scenario-1 mixtures must be found."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.stats.bimodality import (
    bimodality_coefficient,
    fit_two_gaussians,
    is_bimodal,
)


def mixture(rng, mu1, mu2, sigma, n1=50, n2=50):
    return np.concatenate([rng.normal(mu1, sigma, n1), rng.normal(mu2, sigma, n2)])


class TestCoefficient:
    def test_unimodal_below_benchmark(self):
        rng = np.random.default_rng(0)
        bc = bimodality_coefficient(rng.normal(1000, 50, 200))
        assert bc < 5 / 9

    def test_clear_mixture_above_benchmark(self):
        rng = np.random.default_rng(0)
        bc = bimodality_coefficient(mixture(rng, 1100, 2100, 40))
        assert bc > 5 / 9

    def test_constant_sample(self):
        assert bimodality_coefficient([3.0] * 10) == 0.0

    def test_small_sample_rejected(self):
        with pytest.raises(AnalysisError):
            bimodality_coefficient([1, 2, 3])


class TestMixtureFit:
    def test_recovers_separated_components(self):
        rng = np.random.default_rng(1)
        gmm = fit_two_gaussians(mixture(rng, 1100, 2100, 50))
        assert gmm.converged
        assert gmm.means[0] == pytest.approx(1100, abs=40)
        assert gmm.means[1] == pytest.approx(2100, abs=40)
        assert gmm.weights[0] == pytest.approx(0.5, abs=0.1)
        assert gmm.ashman_d > 2

    def test_uneven_weights(self):
        """The paper's stripe-count-3 case: (1,2) twice as likely as (0,3)."""
        rng = np.random.default_rng(2)
        gmm = fit_two_gaussians(mixture(rng, 1082, 1609, 30, n1=33, n2=67))
        assert gmm.weights[0] == pytest.approx(0.33, abs=0.1)

    def test_constant_sample(self):
        gmm = fit_two_gaussians([5.0] * 10)
        assert gmm.converged

    def test_small_sample_rejected(self):
        with pytest.raises(AnalysisError):
            fit_two_gaussians([1, 2, 3, 4, 5])


class TestVerdict:
    def test_paper_like_bimodal_cases(self):
        """Mode pairs with the spacing/noise of Figure 6a."""
        rng = np.random.default_rng(3)
        for mu1, mu2, w1 in ((1082, 2125, 0.5), (1082, 1609, 0.33), (1609, 2125, 0.5)):
            n1 = int(100 * w1)
            sample = mixture(rng, mu1, mu2, 35, n1=n1, n2=100 - n1)
            report = is_bimodal(sample)
            assert report.bimodal, (mu1, mu2)

    def test_paper_like_unimodal_cases(self):
        """Single placements (stripe 1, 4, 7, 8) must not be flagged."""
        rng = np.random.default_rng(4)
        for mu in (1082, 1435, 1869, 2125):
            sample = rng.normal(mu, 40, 100)
            assert not is_bimodal(sample).bimodal, mu

    def test_tiny_minor_mode_not_flagged(self):
        rng = np.random.default_rng(5)
        sample = np.concatenate([rng.normal(1000, 30, 98), rng.normal(2000, 30, 2)])
        assert not is_bimodal(sample).bimodal

    def test_report_fields(self):
        rng = np.random.default_rng(6)
        report = is_bimodal(mixture(rng, 1000, 2000, 30))
        assert report.n == 100
        assert report.mixture_preferred
        assert report.bic_mixture < report.bic_single
