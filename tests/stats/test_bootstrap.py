"""Bootstrap confidence intervals."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.stats.bootstrap import bootstrap_ci, bootstrap_ratio_ci


class TestBootstrapCI:
    def test_estimate_is_statistic(self):
        values = [10.0, 20.0, 30.0]
        est, low, high = bootstrap_ci(values)
        assert est == pytest.approx(20.0)
        assert low <= est <= high

    def test_custom_statistic(self):
        values = np.arange(1, 101, dtype=float)
        est, low, high = bootstrap_ci(values, statistic=np.median)
        assert est == pytest.approx(50.5)
        assert low <= est <= high

    def test_deterministic_with_rng(self):
        values = np.random.default_rng(0).normal(100, 10, 40)
        a = bootstrap_ci(values, rng=np.random.default_rng(7))
        b = bootstrap_ci(values, rng=np.random.default_rng(7))
        assert a == b

    def test_interval_shrinks_with_n(self):
        rng = np.random.default_rng(1)
        _, lo_s, hi_s = bootstrap_ci(rng.normal(0, 1, 15), rng=np.random.default_rng(0))
        _, lo_l, hi_l = bootstrap_ci(rng.normal(0, 1, 500), rng=np.random.default_rng(0))
        assert (hi_l - lo_l) < (hi_s - lo_s)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            bootstrap_ci([1.0])
        with pytest.raises(AnalysisError):
            bootstrap_ci([1.0, 2.0], confidence=2.0)
        with pytest.raises(AnalysisError):
            bootstrap_ci([1.0, np.inf])


class TestRatioCI:
    def test_known_ratio(self):
        """The paper's 49% (3,3)-over-(1,3) claim shape."""
        rng = np.random.default_rng(2)
        high = rng.normal(2125, 40, 100)
        low = rng.normal(1435, 40, 100)
        ratio, lo, hi = bootstrap_ratio_ci(high, low, rng=np.random.default_rng(0))
        assert ratio == pytest.approx(2125 / 1435, rel=0.02)
        assert lo <= ratio <= hi
        assert lo > 1.40  # the gain is significantly above 40%

    def test_zero_denominator_rejected(self):
        with pytest.raises(AnalysisError):
            bootstrap_ratio_ci([1.0, 2.0], [-1.0, 1.0])
