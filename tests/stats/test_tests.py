"""Welch's t-test and KS normality: the Section IV-D procedure."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.errors import AnalysisError
from repro.stats.tests import ks_normality, welch_ttest


class TestWelch:
    def test_identical_distributions_high_p(self):
        rng = np.random.default_rng(0)
        a = rng.normal(5000, 300, 60)
        b = rng.normal(5000, 300, 60)
        result = welch_ttest(a, b)
        assert result.pvalue > 0.05
        assert not result.rejects_at(0.05)

    def test_shifted_means_low_p(self):
        rng = np.random.default_rng(1)
        result = welch_ttest(rng.normal(5000, 100, 60), rng.normal(5400, 100, 60))
        assert result.pvalue < 1e-6
        assert result.rejects_at(0.05)

    def test_matches_scipy(self):
        rng = np.random.default_rng(2)
        a, b = rng.normal(0, 1, 30), rng.normal(0.3, 2, 40)
        ours = welch_ttest(a, b)
        stat, p = sps.ttest_ind(a, b, equal_var=False)
        assert ours.statistic == pytest.approx(float(stat))
        assert ours.pvalue == pytest.approx(float(p))

    def test_unequal_variances_handled(self):
        rng = np.random.default_rng(3)
        a = rng.normal(100, 1, 50)
        b = rng.normal(100, 50, 50)
        result = welch_ttest(a, b)
        assert 0 <= result.pvalue <= 1
        assert "df=" in result.detail

    def test_validation(self):
        with pytest.raises(AnalysisError):
            welch_ttest([1.0], [1.0, 2.0])
        with pytest.raises(AnalysisError):
            welch_ttest([1.0, np.nan], [1.0, 2.0])

    def test_alpha_bounds(self):
        result = welch_ttest([1, 2, 3], [1, 2, 3])
        with pytest.raises(AnalysisError):
            result.rejects_at(0)


class TestKSNormality:
    def test_normal_sample_passes(self):
        rng = np.random.default_rng(4)
        result = ks_normality(rng.normal(5000, 300, 100))
        assert result.pvalue > 0.05

    def test_bimodal_sample_fails(self):
        rng = np.random.default_rng(5)
        sample = np.concatenate([rng.normal(1000, 20, 50), rng.normal(2000, 20, 50)])
        assert ks_normality(sample).pvalue < 0.01

    def test_constant_sample_rejected(self):
        with pytest.raises(AnalysisError):
            ks_normality([5.0] * 10)

    def test_small_sample_rejected(self):
        with pytest.raises(AnalysisError):
            ks_normality([1, 2, 3])
