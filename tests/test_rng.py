"""Seed trees: reproducibility and independence."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rng import SeedTree, spawn_rng, stable_hash32


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash32("fig6", 3) == stable_hash32("fig6", 3)

    def test_distinguishes_keys(self):
        assert stable_hash32("a") != stable_hash32("b")
        assert stable_hash32("a", 1) != stable_hash32("a", 2)

    @given(st.text(), st.integers())
    def test_in_32bit_range(self, text, number):
        value = stable_hash32(text, number)
        assert 0 <= value <= 0xFFFFFFFF


class TestSeedTree:
    def test_same_keys_same_stream(self):
        a = SeedTree(42).rng("noise", rep=3).random(8)
        b = SeedTree(42).rng("noise", rep=3).random(8)
        assert np.array_equal(a, b)

    def test_different_keys_different_stream(self):
        a = SeedTree(42).rng("noise", rep=3).random(8)
        b = SeedTree(42).rng("noise", rep=4).random(8)
        assert not np.array_equal(a, b)

    def test_different_seed_different_stream(self):
        a = SeedTree(1).rng("x").random(8)
        b = SeedTree(2).rng("x").random(8)
        assert not np.array_equal(a, b)

    def test_order_independence(self):
        """Sub-streams are keyed, not sequential."""
        tree = SeedTree(7)
        first = tree.rng("a").random(4)
        tree.rng("b").random(4)  # interleaved request must not perturb "a"
        again = SeedTree(7).rng("a").random(4)
        assert np.array_equal(first, again)

    def test_child_subtree_consistency(self):
        direct = SeedTree(9).child("fig4").rng("noise").random(4)
        again = SeedTree(9).child("fig4").rng("noise").random(4)
        assert np.array_equal(direct, again)

    def test_child_differs_from_root(self):
        root = SeedTree(9).rng("noise").random(4)
        child = SeedTree(9).child("fig4").rng("noise").random(4)
        assert not np.array_equal(root, child)

    def test_none_seed_is_zero(self):
        assert np.array_equal(SeedTree(None).rng("x").random(4), SeedTree(0).rng("x").random(4))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SeedTree(-1)

    def test_named_kwargs_participate(self):
        a = SeedTree(5).rng("x", rep=1).random(4)
        b = SeedTree(5).rng("x", rep=2).random(4)
        assert not np.array_equal(a, b)

    def test_spawn_rng_shorthand(self):
        assert np.array_equal(spawn_rng(3, "k").random(4), SeedTree(3).rng("k").random(4))
