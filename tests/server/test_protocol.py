"""Wire-protocol framing: round trips, torn frames, hostile input."""

import socket
import struct
import threading

import pytest

from repro.errors import ProtocolError
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    check_version,
    message,
    recv_frame,
    send_frame,
)


def _pair():
    return socket.socketpair()


class TestFraming:
    def test_round_trip(self):
        a, b = _pair()
        try:
            msg = message("submit", spec={"k": 1}, rep=3)
            send_frame(a, msg)
            got = recv_frame(b)
            assert got == msg
            assert got["v"] == PROTOCOL_VERSION
        finally:
            a.close()
            b.close()

    def test_multiple_frames_in_order(self):
        a, b = _pair()
        try:
            for i in range(5):
                send_frame(a, message("ping", n=i))
            assert [recv_frame(b)["n"] for _ in range(5)] == [0, 1, 2, 3, 4]
        finally:
            a.close()
            b.close()

    def test_clean_eof_returns_none(self):
        a, b = _pair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_torn_header_raises(self):
        a, b = _pair()
        try:
            a.sendall(b"\x00\x00")  # half a length header, then EOF
            a.close()
            with pytest.raises(ProtocolError, match="torn frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_torn_body_raises(self):
        a, b = _pair()
        try:
            body = b'{"v": 1, "type": "ping"}'
            a.sendall(struct.pack(">I", len(body)) + body[: len(body) // 2])
            a.close()
            with pytest.raises(ProtocolError, match="torn frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_frame_rejected_without_buffering(self):
        a, b = _pair()
        try:
            a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError, match="exceeds"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_undecodable_body_raises(self):
        a, b = _pair()
        try:
            body = b"not json at all"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError, match="undecodable"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_object_body_raises(self):
        a, b = _pair()
        try:
            body = b"[1, 2, 3]"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(ProtocolError, match="object"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_large_frame_round_trips(self):
        # Bigger than one recv() chunk, to exercise the reassembly loop.
        a, b = _pair()
        try:
            msg = message("result", blob="x" * (3 << 20))
            done = []
            t = threading.Thread(target=lambda: done.append(send_frame(a, msg)))
            t.start()
            got = recv_frame(b)
            t.join(timeout=10)
            assert got == msg
        finally:
            a.close()
            b.close()


class TestVersioning:
    def test_matching_version_accepted(self):
        check_version(message("ping"))

    def test_mismatched_version_rejected(self):
        with pytest.raises(ProtocolError, match="version mismatch"):
            check_version({"v": PROTOCOL_VERSION + 1, "type": "ping"})

    def test_missing_version_rejected(self):
        with pytest.raises(ProtocolError, match="version mismatch"):
            check_version({"type": "ping"})
