"""Session leases: open/resume/renew/expire and WAL replay."""

import pytest

from repro.server.sessions import SessionRegistry


@pytest.fixture()
def registry(tmp_path):
    reg = SessionRegistry(tmp_path / "sessions.journal", lease_s=30.0)
    yield reg
    reg.close_journal()


class TestLifecycle:
    def test_open_assigns_sequential_ids(self, registry):
        assert registry.open(now=0.0).session_id == "s1"
        assert registry.open(now=0.0).session_id == "s2"
        assert len(registry.sessions) == 2

    def test_open_sets_the_lease(self, registry):
        session = registry.open(now=100.0)
        assert session.lease_expires == 130.0
        assert session.live(129.0)
        assert not session.live(130.0)

    def test_resume_renews_a_live_lease(self, registry):
        session = registry.open(now=0.0)
        resumed = registry.resume(session.session_id, now=10.0)
        assert resumed is session
        assert resumed.lease_expires == 40.0

    def test_resume_refuses_a_lapsed_lease(self, registry):
        session = registry.open(now=0.0)
        assert registry.resume(session.session_id, now=31.0) is None

    def test_resume_refuses_an_unknown_id(self, registry):
        assert registry.resume("s99", now=0.0) is None

    def test_renew_unknown_session_is_false(self, registry):
        assert registry.renew("s99", now=0.0) is False

    def test_close_removes_the_session(self, registry):
        session = registry.open(now=0.0)
        assert registry.close(session.session_id)
        assert registry.sessions == {}
        assert not registry.close(session.session_id)

    def test_expire_evicts_only_lapsed_sessions(self, registry):
        stale = registry.open(now=0.0)
        fresh = registry.open(now=20.0)
        evicted = registry.expire(now=35.0)
        assert [s.session_id for s in evicted] == [stale.session_id]
        assert fresh.session_id in registry.sessions


class TestReplay:
    def _reload(self, registry, now):
        fresh = SessionRegistry(registry.path, lease_s=registry.lease_s)
        fresh.load(now=now)
        return fresh

    def test_live_session_survives_restart(self, registry):
        session = registry.open(now=0.0)
        reloaded = self._reload(registry, now=10.0)
        try:
            assert session.session_id in reloaded.sessions
            assert reloaded.resumed == 1
        finally:
            reloaded.close_journal()

    def test_lapsed_session_stays_dead_after_restart(self, registry):
        registry.open(now=0.0)
        reloaded = self._reload(registry, now=1000.0)
        try:
            assert reloaded.sessions == {}
            assert reloaded.resumed == 0
        finally:
            reloaded.close_journal()

    def test_closed_session_not_resurrected(self, registry):
        session = registry.open(now=0.0)
        registry.close(session.session_id)
        reloaded = self._reload(registry, now=1.0)
        try:
            assert reloaded.sessions == {}
        finally:
            reloaded.close_journal()

    def test_expired_session_not_resurrected(self, registry):
        registry.open(now=0.0)
        registry.expire(now=100.0)
        reloaded = self._reload(registry, now=0.0)  # clock rolled back
        try:
            assert reloaded.sessions == {}
        finally:
            reloaded.close_journal()

    def test_counter_is_monotonic_across_restarts(self, registry):
        # Even when every prior session is dead, new ids must not
        # collide with journaled ones.
        registry.open(now=0.0)
        registry.open(now=0.0)
        reloaded = self._reload(registry, now=1000.0)
        try:
            assert reloaded.sessions == {}
            assert reloaded.open(now=1000.0).session_id == "s3"
        finally:
            reloaded.close_journal()

    def test_garbage_records_ignored(self, registry, tmp_path):
        registry.open(now=0.0)
        registry._journal.append({"op": "open", "session": "not-a-session"})
        registry._journal.append({"op": "open", "session": "sNaN"})
        reloaded = self._reload(registry, now=1.0)
        try:
            assert list(reloaded.sessions) == ["s1"]
        finally:
            reloaded.close_journal()
