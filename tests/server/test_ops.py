"""The live ops surface: SLO tracking, Prometheus exposition, top frames."""

from urllib.request import urlopen

import pytest

from repro.errors import OrchestratorError
from repro.server.ops import (
    MetricsServer,
    SLOPolicy,
    SLOTracker,
    prometheus_text,
    render_top,
)


class TestSLOPolicy:
    def test_bad_knobs_rejected(self):
        with pytest.raises(OrchestratorError):
            SLOPolicy(queue_wait_p99_s=0)
        with pytest.raises(OrchestratorError):
            SLOPolicy(max_shed_rate=0)
        with pytest.raises(OrchestratorError):
            SLOPolicy(max_shed_rate=1.5)
        with pytest.raises(OrchestratorError):
            SLOPolicy(min_hit_ratio=1.0)
        with pytest.raises(OrchestratorError):
            SLOPolicy(window=0)


class TestSLOTracker:
    def test_empty_tracker_is_ok(self):
        state = SLOTracker().evaluate()
        assert state["ok"] is True
        assert state["burn_rate"] == 0.0
        assert state["queue_wait_p99_s"] is None
        assert state["hit_ratio"] is None

    def test_fast_waits_within_budget(self):
        tracker = SLOTracker(SLOPolicy(queue_wait_p99_s=1.0))
        for _ in range(50):
            tracker.observe_queue_wait(0.01)
        state = tracker.evaluate()
        assert state["ok"] is True
        assert state["queue_wait_p99_s"] == pytest.approx(0.01)

    def test_slow_waits_burn_the_latency_budget(self):
        tracker = SLOTracker(SLOPolicy(queue_wait_p99_s=1.0))
        # 10% of waits over target against a 1% allowance: 10x burn.
        for i in range(100):
            tracker.observe_queue_wait(5.0 if i % 10 == 0 else 0.01)
        state = tracker.evaluate()
        assert state["ok"] is False
        assert state["burn_rate"] == pytest.approx(10.0)

    def test_shed_rate_burns_its_budget(self):
        tracker = SLOTracker(SLOPolicy(max_shed_rate=0.1))
        for i in range(100):
            tracker.observe_admit(shed=(i % 5 == 0))  # 20% shed vs 10% budget
        state = tracker.evaluate()
        assert state["shed_rate"] == pytest.approx(0.2)
        assert state["burn_rate"] == pytest.approx(2.0)
        assert state["ok"] is False

    def test_hit_ratio_floor_disabled_by_default(self):
        tracker = SLOTracker()
        for _ in range(10):
            tracker.observe_cache(hit=False)
        state = tracker.evaluate()
        assert state["hit_ratio"] == 0.0
        assert state["ok"] is True  # cold cache is not an incident

    def test_hit_ratio_floor_burns_when_set(self):
        tracker = SLOTracker(SLOPolicy(min_hit_ratio=0.5))
        for i in range(10):
            tracker.observe_cache(hit=(i % 4 == 0))  # 30% hits, 50% floor
        state = tracker.evaluate()
        assert state["ok"] is False
        assert state["burn_rate"] > 1.0

    def test_window_slides(self):
        tracker = SLOTracker(SLOPolicy(window=4))
        for _ in range(10):
            tracker.observe_queue_wait(9.0)
        for _ in range(4):
            tracker.observe_queue_wait(0.01)
        assert tracker.evaluate()["queue_wait_p99_s"] == pytest.approx(0.01)


def _stats():
    return {
        "pending": 2,
        "max_pending": 64,
        "draining": False,
        "admitted": 10,
        "shed": 1,
        "completed": 8,
        "sessions": 3,
        "jobs": {"queued": 1, "leased": 1, "done": 8, "failed": 0},
        "workers": {"w0": "running abc:0", "w1": "idle"},
        "cache": {"hits": 3, "misses": 5, "hit_ratio": 0.375},
        "slo": {
            "window": 128,
            "queue_wait_p99_s": 0.02,
            "shed_rate": 0.1,
            "hit_ratio": 0.375,
            "burn_rate": 2.0,
            "ok": False,
        },
    }


class TestPrometheusText:
    def test_core_series_and_format(self):
        text = prometheus_text(_stats())
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "repro_server_pending 2" in lines
        assert "repro_server_admitted_total 10" in lines
        assert 'repro_server_jobs{state="queued"} 1' in lines
        assert 'repro_server_worker_busy{worker="w0"} 1' in lines
        assert 'repro_server_worker_busy{worker="w1"} 0' in lines
        assert "repro_server_cache_hits_total 3" in lines
        assert "repro_slo_burn_rate 2.0" in lines
        assert "repro_slo_ok 0" in lines
        # Every exported series has HELP and TYPE preamble lines.
        assert "# HELP repro_server_pending Jobs admitted but not yet complete." in lines
        assert "# TYPE repro_server_pending gauge" in lines
        assert "# TYPE repro_server_admitted_total counter" in lines

    def test_missing_sections_render_no_series(self):
        text = prometheus_text({"pending": 0, "max_pending": 1})
        assert "repro_server_jobs{" not in text
        assert "repro_slo_" not in text

    def test_registry_snapshot_appends(self):
        metrics = {
            "server.admit": {"type": "counter", "value": 4},
            "server.complete{status=ok}": {"type": "counter", "value": 4},
            "run.bandwidth_mib_s": {
                "type": "histogram",
                "count": 4,
                "sum": 4000.0,
                "quantiles": {"p50": 990.0, "p99": 1100.0},
            },
        }
        text = prometheus_text(_stats(), metrics)
        assert "repro_server_admit 4" in text
        assert 'repro_server_complete{status="ok"} 4' in text
        assert "repro_run_bandwidth_mib_s_count 4" in text
        assert 'repro_run_bandwidth_mib_s{quantile="p50"} 990.0' in text


class TestMetricsServer:
    def test_scrape_round_trip(self):
        server = MetricsServer("127.0.0.1", 0, lambda: prometheus_text(_stats()))
        try:
            with urlopen(f"http://127.0.0.1:{server.port}/metrics", timeout=5) as resp:
                assert resp.status == 200
                assert resp.headers["Content-Type"].startswith("text/plain")
                body = resp.read().decode()
            assert "repro_server_pending 2" in body
        finally:
            server.close()

    def test_unknown_path_is_404(self):
        server = MetricsServer("127.0.0.1", 0, lambda: "x\n")
        try:
            import urllib.error

            with pytest.raises(urllib.error.HTTPError) as err:
                urlopen(f"http://127.0.0.1:{server.port}/nope", timeout=5)
            assert err.value.code == 404
        finally:
            server.close()

    def test_unbindable_port_raises(self):
        first = MetricsServer("127.0.0.1", 0, lambda: "x\n")
        try:
            with pytest.raises(OrchestratorError):
                MetricsServer("127.0.0.1", first.port, lambda: "x\n")
        finally:
            first.close()


class TestRenderTop:
    def test_frame_contains_every_section(self):
        frame = render_top(_stats(), title="t")
        assert frame.startswith("t — serving")
        assert "2/64 in flight" in frame
        assert "admitted 10   shed 1   completed 8" in frame
        assert "hits 3   misses 5" in frame
        assert "w0" in frame and "running abc:0" in frame
        assert "BURNING" in frame and "burn 2.00x" in frame

    def test_draining_and_sparse_stats(self):
        frame = render_top({"draining": True, "pending": 0, "max_pending": 4})
        assert "DRAINING" in frame
        assert "slo" not in frame  # no slo section without the key
