"""The tracing determinism contract, end to end.

Trace ids derive purely from job identity, so: two identical remote
campaigns stamp identical ids; a local campaign mints the same ids as a
remote one; and turning tracing on changes *nothing* about results,
stores, or fingerprints — only the event streams gain fields.  The
chaos test drives a faulted campaign through :class:`ChaosProxy` and
proves every admitted job still reconstructs a complete span tree.
"""

import json

import pytest

from repro.client import remote_run_specs
from repro.experiments.common import run_specs
from repro.methodology.plan import ExperimentSpec
from repro.methodology.records import FailedRunRecord
from repro.scenario.compile import compile_scenario
from repro.server import ServerConfig
from repro.server.netchaos import ChaosProxy, serve_in_thread
from repro.telemetry.bus import session
from repro.telemetry.events import validate_event
from repro.telemetry.trace import trace_id_for
from repro.telemetry.traceview import (
    check_traces,
    chrome_trace,
    collect_traces,
    load_streams,
)

REPS = 2


def _specs():
    return [
        ExperimentSpec(
            "trace-e2e", "scenario1", {"num_nodes": 2, "stripe_count": 4}
        )
    ]


def _expected_trace_ids(seed=0):
    scenario = compile_scenario(_specs()[0], seed=seed, max_nodes=4)
    return {trace_id_for(scenario.fingerprint, rep) for rep in range(REPS)}


def _config(tmp_path, name, **overrides):
    defaults = dict(
        state_dir=tmp_path / name,
        workers=2,
        io_timeout_s=5.0,
        wait_cap_s=2.0,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


def _remote_campaign(tmp_path, name, trace=True, port=None, **kwargs):
    """One traced remote campaign; returns (store, stream path)."""
    stream = tmp_path / f"{name}.jsonl"
    with session(jsonl=stream, trace=trace):
        with serve_in_thread(_config(tmp_path, name)) as server:
            store = remote_run_specs(
                _specs(),
                "127.0.0.1",
                port if port is not None else server.port,
                repetitions=REPS,
                seed=0,
                max_nodes=4,
                fallback=False,
                **kwargs,
            )
    return store, stream


def _stamped_trace_ids(stream):
    ids = set()
    for line in stream.read_text().splitlines():
        trace = json.loads(line).get("trace")
        if isinstance(trace, str):
            ids.add(trace)
    return ids


class TestDeterminism:
    def test_identical_campaigns_stamp_identical_trace_ids(self, tmp_path):
        store_a, stream_a = _remote_campaign(tmp_path, "a")
        store_b, stream_b = _remote_campaign(tmp_path, "b")
        expected = _expected_trace_ids()
        assert _stamped_trace_ids(stream_a) == expected
        assert _stamped_trace_ids(stream_b) == expected
        # ... and the stores are byte-identical.
        store_a.write_csv(tmp_path / "a.csv")
        store_b.write_csv(tmp_path / "b.csv")
        assert (tmp_path / "a.csv").read_bytes() == (tmp_path / "b.csv").read_bytes()

    def test_local_campaign_mints_the_same_ids(self, tmp_path):
        stream = tmp_path / "local.jsonl"
        with session(jsonl=stream, trace=True):
            run_specs(_specs(), repetitions=REPS, seed=0, max_nodes=4, cache=False)
        assert _stamped_trace_ids(stream) == _expected_trace_ids()

    def test_tracing_changes_no_store_bytes(self, tmp_path):
        store_on, _ = _remote_campaign(tmp_path, "on", trace=True)
        store_off, _ = _remote_campaign(tmp_path, "off", trace=False)
        store_on.write_csv(tmp_path / "on.csv")
        store_off.write_csv(tmp_path / "off.csv")
        assert (tmp_path / "on.csv").read_bytes() == (tmp_path / "off.csv").read_bytes()

    def test_trace_off_stream_has_no_trace_fields(self, tmp_path):
        _, stream = _remote_campaign(tmp_path, "notrace", trace=False)
        assert _stamped_trace_ids(stream) == set()

    def test_traced_stream_is_schema_valid(self, tmp_path):
        _, stream = _remote_campaign(tmp_path, "valid")
        events = [json.loads(line) for line in stream.read_text().splitlines()]
        assert events
        for event in events:
            assert validate_event(event) == []


class TestSpanTrees:
    def test_clean_campaign_reconstructs_complete_trees(self, tmp_path):
        _, stream = _remote_campaign(tmp_path, "clean")
        traces = collect_traces(load_streams([stream]))
        assert {t.trace_id for t in traces} == _expected_trace_ids()
        assert check_traces(traces) == []
        for trace in traces:
            assert trace.admitted
            assert trace.status == "ok"
            assert trace.duration("server.lease", "queue_wait_s") is not None

    def test_chaos_faulted_campaign_still_traces_completely(self, tmp_path):
        stream = tmp_path / "chaos.jsonl"
        with session(jsonl=stream, trace=True):
            with serve_in_thread(_config(tmp_path, "chaos")) as server:
                # Reset the connection mid-campaign: the client retries
                # through the same (now pass-through) proxy.
                with ChaosProxy(
                    server.port, mode="reset", fault_after_bytes=400
                ) as proxy:
                    store = remote_run_specs(
                        _specs(),
                        "127.0.0.1",
                        proxy.port,
                        repetitions=REPS,
                        seed=0,
                        max_nodes=4,
                        fallback=False,
                        max_attempts=10,
                    )
                    assert proxy.faulted
        assert len(store) == REPS
        traces = collect_traces(load_streams([stream]))
        admitted = [t for t in traces if t.admitted]
        assert {t.trace_id for t in admitted} == _expected_trace_ids()
        assert check_traces(traces) == []
        # The export is valid JSON with one complete span set per job.
        doc = json.loads(json.dumps(chrome_trace(admitted)))
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        for name in ("job", "queue", "run"):
            assert sum(1 for e in spans if e["name"] == name) == REPS


class TestFlightRecorder:
    def test_quarantine_records_carry_recent_trace_events(self, tmp_path):
        with session(ring=4096, trace=True):
            store = run_specs(
                [
                    ExperimentSpec(
                        "trace-e2e",
                        "scenario1",
                        {"num_nodes": 2, "stripe_count": 4, "chooser": "bogus"},
                    )
                ],
                repetitions=1,
                seed=0,
                max_nodes=4,
                on_error="skip",
            )
        assert len(store.failures) == 1
        failure = store.failures[0]
        assert failure.last_events
        traces = {e.get("trace") for e in failure.last_events}
        # Every captured event belongs to the failing job's trace.
        assert len(traces) == 1 and None not in traces
        # The post-mortem survives serialization.
        round_trip = FailedRunRecord.from_dict(failure.to_dict())
        assert round_trip.last_events == failure.last_events

    def test_no_session_means_no_flight_events(self):
        store = run_specs(
            [
                ExperimentSpec(
                    "trace-e2e",
                    "scenario1",
                    {"num_nodes": 2, "stripe_count": 4, "chooser": "bogus"},
                )
            ],
            repetitions=1,
            seed=0,
            max_nodes=4,
            on_error="skip",
        )
        assert len(store.failures) == 1
        assert store.failures[0].last_events == ()


class TestWireTrace:
    def test_result_frames_echo_the_trace_id(self, tmp_path):
        from repro.client import RemoteClient

        scenario = compile_scenario(_specs()[0], seed=0, max_nodes=4)
        with serve_in_thread(_config(tmp_path, "wire")) as server:
            with RemoteClient("127.0.0.1", server.port, fallback=False) as client:
                client.run(scenario, 0)
                frame = client.wait(scenario, 0)
        assert frame["trace"] == trace_id_for(scenario.fingerprint, 0)

    def test_server_mints_the_id_when_the_client_omits_it(self, tmp_path):
        import socket

        from repro.server.protocol import message, recv_frame, send_frame

        scenario = compile_scenario(_specs()[0], seed=0, max_nodes=4)
        with serve_in_thread(_config(tmp_path, "mint")) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=5.0
            ) as sock:
                sock.settimeout(5.0)
                send_frame(sock, message("hello"))
                recv_frame(sock)
                send_frame(
                    sock,
                    message("submit", spec=scenario.to_jsonable(), rep=0),
                )
                accepted = recv_frame(sock)
        assert accepted["type"] == "accepted"
        assert accepted["trace"] == trace_id_for(scenario.fingerprint, 0)
