"""End-to-end orchestrator server tests over real sockets.

Every test starts an in-process :class:`OrchestratorServer` via
``serve_in_thread`` and talks to it through :class:`RemoteClient` or
raw protocol frames — the same wire path production uses, minus the
subprocess boundary (the chaos harness covers that).
"""

import json
import socket

import pytest

from repro.engine.result import result_from_jsonable, result_to_jsonable
from repro.errors import ConfigError, RemoteError
from repro.client import RemoteClient
from repro.methodology.plan import ExperimentSpec
from repro.scenario.compile import compile_scenario
from repro.server import OrchestratorServer, ServerConfig
from repro.server.netchaos import serve_in_thread
from repro.server.protocol import message, recv_frame, send_frame
from repro.service import get_service
from repro.telemetry.bus import RingBufferSink, get_bus


def _scenario(num_nodes=2, seed=0):
    spec = ExperimentSpec(
        "server-e2e", "scenario1", {"num_nodes": num_nodes, "stripe_count": 4}
    )
    return compile_scenario(spec, seed=seed, max_nodes=4)


def _config(tmp_path, **overrides):
    defaults = dict(
        state_dir=tmp_path / "state",
        workers=2,
        io_timeout_s=5.0,
        wait_cap_s=2.0,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


def _raw_rpc(port, *msgs):
    """One connection, a hello, then each message; returns the replies."""
    with socket.create_connection(("127.0.0.1", port), timeout=5.0) as sock:
        sock.settimeout(5.0)
        send_frame(sock, message("hello"))
        welcome = recv_frame(sock)
        replies = []
        for msg in msgs:
            msg.setdefault("session", welcome.get("session"))
            send_frame(sock, msg)
            replies.append(recv_frame(sock))
        return welcome, replies


@pytest.fixture()
def ring():
    sink = RingBufferSink(65536)
    bus = get_bus()
    bus.attach(sink)
    yield sink
    bus.detach(sink)


def _events(ring, event_type):
    return [e for e in ring.events if e.get("event") == event_type]


class TestConfig:
    def test_bad_knobs_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            ServerConfig(state_dir=tmp_path, workers=0)
        with pytest.raises(ConfigError):
            ServerConfig(state_dir=tmp_path, io_timeout_s=0)
        with pytest.raises(ConfigError):
            ServerConfig(state_dir=tmp_path, session_lease_s=0)


class TestRoundTrip:
    def test_submit_wait_returns_the_local_result(self, tmp_path):
        scenario = _scenario()
        local = get_service().run(scenario, 0)
        with serve_in_thread(_config(tmp_path)) as server:
            with RemoteClient("127.0.0.1", server.port, fallback=False) as client:
                remote = client.run(scenario, 0)
        assert result_to_jsonable(remote) == result_to_jsonable(local)

    def test_ping_returns_stats(self, tmp_path):
        with serve_in_thread(_config(tmp_path)) as server:
            with RemoteClient("127.0.0.1", server.port, fallback=False) as client:
                stats = client.ping()
        assert stats["type"] == "stats"
        assert stats["pending"] == 0
        assert stats["sessions"] == 1

    def test_unknown_job_wait_is_an_error_frame(self, tmp_path):
        with serve_in_thread(_config(tmp_path)) as server:
            _, (reply,) = _raw_rpc(
                server.port,
                message("wait", job="f" * 64, rep=0, timeout_s=0.1),
            )
        assert reply["type"] == "error"
        assert reply["error"] == "unknown-job"

    def test_version_mismatch_is_an_error_frame(self, tmp_path):
        with serve_in_thread(_config(tmp_path)) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=5.0
            ) as sock:
                sock.settimeout(5.0)
                send_frame(sock, {"v": 999, "type": "hello"})
                reply = recv_frame(sock)
        assert reply["type"] == "error"
        assert "version" in reply["message"]

    def test_malformed_submit_is_an_error_frame_not_a_hangup(self, tmp_path):
        with serve_in_thread(_config(tmp_path)) as server:
            _, (bad, pong) = _raw_rpc(
                server.port,
                message("submit", spec={"not": "a scenario"}, rep=0),
                message("ping"),
            )
        assert bad["type"] == "error"
        # The connection survived the bad request.
        assert pong["type"] == "stats"


class TestIdempotency:
    def test_resubmission_admits_once(self, tmp_path, ring):
        scenario = _scenario()
        with serve_in_thread(_config(tmp_path)) as server:
            with RemoteClient("127.0.0.1", server.port, fallback=False) as client:
                first = result_to_jsonable(client.run(scenario, 0))
                second = result_to_jsonable(client.run(scenario, 0))
        assert first == second
        assert len(_events(ring, "server.admit")) == 1
        assert len(_events(ring, "server.complete")) == 1

    def test_concurrent_submit_of_same_job_admits_once(self, tmp_path, ring):
        scenario = _scenario()
        with serve_in_thread(_config(tmp_path)) as server:
            port = server.port
            with RemoteClient("127.0.0.1", port, fallback=False) as a:
                with RemoteClient("127.0.0.1", port, fallback=False) as b:
                    a.submit(scenario, 0)
                    b.submit(scenario, 0)
                    ra = result_to_jsonable(
                        result_from_jsonable(a.wait(scenario, 0)["result"])
                    )
                    rb = result_to_jsonable(
                        result_from_jsonable(b.wait(scenario, 0)["result"])
                    )
        assert ra == rb
        assert len(_events(ring, "server.admit")) == 1


class TestAdmission:
    def test_full_window_sheds_with_retry_hint(self, tmp_path, ring):
        with serve_in_thread(_config(tmp_path, max_pending=1)) as server:
            with server._lock:
                server.admission.occupy(("occupier", 0))
            _, (reply,) = _raw_rpc(
                server.port,
                message("submit", spec=_scenario().to_jsonable(), rep=0),
            )
            with server._lock:
                server.admission.release(("occupier", 0))
        assert reply["type"] == "busy"
        assert reply["reason"] == "capacity"
        assert reply["retry_after_s"] > 0
        assert len(_events(ring, "server.shed")) == 1

    def test_client_retries_through_a_busy_window(self, tmp_path):
        scenario = _scenario()
        with serve_in_thread(_config(tmp_path, max_pending=1)) as server:
            with server._lock:
                server.admission.occupy(("occupier", 0))
            client = RemoteClient(
                "127.0.0.1", server.port, fallback=False, max_attempts=20
            )
            try:
                client.connect()
                import threading, time

                def free():
                    time.sleep(0.4)
                    with server._lock:
                        server.admission.release(("occupier", 0))

                t = threading.Thread(target=free)
                t.start()
                result = client.run(scenario, 0)
                t.join()
            finally:
                client.close()
        assert result_to_jsonable(result) == result_to_jsonable(
            get_service().run(scenario, 0)
        )
        assert client.stats["retries"] >= 1


class TestDrain:
    def test_drain_finishes_leased_work_and_sheds_new(self, tmp_path):
        scenario = _scenario()
        with serve_in_thread(_config(tmp_path)) as server:
            with RemoteClient("127.0.0.1", server.port, fallback=False) as client:
                client.run(scenario, 0)
                server.request_drain("test")
                assert server.wait_drained(timeout=5.0)
                _, (reply,) = _raw_rpc(
                    server.port,
                    message("submit", spec=_scenario(num_nodes=4).to_jsonable(), rep=0),
                )
        assert reply["type"] == "busy"
        assert reply["reason"] == "draining"

    def test_finished_jobs_still_waitable_during_drain(self, tmp_path):
        scenario = _scenario()
        with serve_in_thread(_config(tmp_path)) as server:
            with RemoteClient("127.0.0.1", server.port, fallback=False) as client:
                client.run(scenario, 0)
                server.request_drain("test")
                frame = client.wait(scenario, 0)
        assert frame["status"] == "ok"


class TestSessions:
    def test_reconnect_resumes_the_session(self, tmp_path):
        with serve_in_thread(_config(tmp_path)) as server:
            client = RemoteClient("127.0.0.1", server.port, fallback=False)
            try:
                first = client.connect()
                client._drop()  # connection lost without a bye
                second = client.connect()
            finally:
                client.close()
        assert first == second == "s1"

    def test_lapsed_session_gets_a_fresh_id(self, tmp_path):
        config = _config(tmp_path, session_lease_s=0.2)
        with serve_in_thread(config) as server:
            client = RemoteClient("127.0.0.1", server.port, fallback=False)
            try:
                first = client.connect()
                client._drop()
                import time

                time.sleep(0.5)
                second = client.connect()
            finally:
                client.close()
        assert first == "s1"
        assert second != first


class TestRestart:
    def test_restart_replays_results_byte_identically(self, tmp_path):
        scenario = _scenario()
        config = _config(tmp_path)
        with serve_in_thread(config) as server:
            with RemoteClient("127.0.0.1", server.port, fallback=False) as client:
                before = result_to_jsonable(client.run(scenario, 0))
        # Same state_dir, brand-new process-equivalent: the WAL and the
        # result cache must reproduce the run without re-executing.
        with serve_in_thread(config) as server:
            with RemoteClient("127.0.0.1", server.port, fallback=False) as client:
                after = result_to_jsonable(client.run(scenario, 0))
        assert before == after

    def test_restart_does_not_readmit_finished_jobs(self, tmp_path, ring):
        scenario = _scenario()
        config = _config(tmp_path)
        with serve_in_thread(config) as server:
            with RemoteClient("127.0.0.1", server.port, fallback=False) as client:
                client.run(scenario, 0)
        with serve_in_thread(config) as server:
            with RemoteClient("127.0.0.1", server.port, fallback=False) as client:
                client.run(scenario, 0)
        assert len(_events(ring, "server.admit")) == 1


class TestFallback:
    def _dead_port(self):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        return port

    def test_unreachable_server_falls_back_to_local(self, tmp_path, ring):
        scenario = _scenario()
        local = result_to_jsonable(get_service().run(scenario, 0))
        client = RemoteClient(
            "127.0.0.1", self._dead_port(), max_attempts=2, fallback=True
        )
        remote = result_to_jsonable(client.run(scenario, 0))
        assert remote == local
        assert client.stats["fallbacks"] == 1
        assert len(_events(ring, "client.fallback")) == 1

    def test_no_fallback_raises(self, tmp_path):
        client = RemoteClient(
            "127.0.0.1", self._dead_port(), max_attempts=2, fallback=False
        )
        with pytest.raises(RemoteError, match="after 2 attempts"):
            client.run(_scenario(), 0)


class TestStatePersistence:
    def test_specs_are_persisted_before_execution(self, tmp_path):
        scenario = _scenario()
        config = _config(tmp_path)
        with serve_in_thread(config) as server:
            with RemoteClient("127.0.0.1", server.port, fallback=False) as client:
                client.run(scenario, 0)
            spec_file = config.state_dir / "specs" / f"{scenario.fingerprint}.json"
            assert spec_file.is_file()
            stored = json.loads(spec_file.read_text())
            assert stored == scenario.to_jsonable()
