"""Admission control: windows, priority classes, shedding, drain."""

import pytest

from repro.errors import ConfigError
from repro.server.admission import (
    AdmissionController,
    AdmissionPolicy,
)


def _controller(max_pending=4, batch_headroom=0.75, retry_after_s=0.25):
    return AdmissionController(
        policy=AdmissionPolicy(
            max_pending=max_pending,
            batch_headroom=batch_headroom,
            retry_after_s=retry_after_s,
        )
    )


class TestPolicy:
    def test_interactive_gets_the_full_window(self):
        policy = AdmissionPolicy(max_pending=8, batch_headroom=0.75)
        assert policy.limit_for("interactive") == 8
        assert policy.limit_for("batch") == 6

    def test_batch_limit_floor_is_one(self):
        policy = AdmissionPolicy(max_pending=1, batch_headroom=0.5)
        assert policy.limit_for("batch") == 1

    def test_bad_knobs_rejected(self):
        with pytest.raises(ConfigError):
            AdmissionPolicy(max_pending=0)
        with pytest.raises(ConfigError):
            AdmissionPolicy(batch_headroom=0.0)
        with pytest.raises(ConfigError):
            AdmissionPolicy(batch_headroom=1.5)
        with pytest.raises(ConfigError):
            AdmissionPolicy(retry_after_s=-1.0)


class TestAdmission:
    def test_admits_until_the_window_fills(self):
        ctl = _controller(max_pending=2)
        assert ctl.try_admit(("a", 0), "interactive").admitted
        assert ctl.try_admit(("a", 1), "interactive").admitted
        refused = ctl.try_admit(("a", 2), "interactive")
        assert not refused.admitted
        assert refused.reason == "capacity"
        assert refused.retry_after_s > 0

    def test_batch_shed_before_interactive(self):
        ctl = _controller(max_pending=4, batch_headroom=0.5)
        assert ctl.try_admit(("a", 0), "batch").admitted
        assert ctl.try_admit(("a", 1), "batch").admitted
        # Batch is now at its 50% line; interactive still fits.
        assert not ctl.try_admit(("a", 2), "batch").admitted
        assert ctl.try_admit(("a", 3), "interactive").admitted

    def test_already_pending_readmitted_for_free(self):
        ctl = _controller(max_pending=1)
        assert ctl.try_admit(("a", 0), "batch").admitted
        # The window is full, but resubmitting the same job is not a
        # new admission — idempotent retries must never be shed.
        assert ctl.try_admit(("a", 0), "batch").admitted
        assert ctl.counters["admitted"] == 1

    def test_release_frees_the_slot(self):
        ctl = _controller(max_pending=1)
        assert ctl.try_admit(("a", 0), "interactive").admitted
        assert not ctl.try_admit(("a", 1), "interactive").admitted
        ctl.release(("a", 0))
        assert ctl.try_admit(("a", 1), "interactive").admitted
        assert ctl.counters["completed"] == 1

    def test_release_of_unknown_job_is_noop(self):
        ctl = _controller()
        ctl.release(("ghost", 0))
        assert ctl.counters["completed"] == 0

    def test_draining_sheds_everything(self):
        ctl = _controller(max_pending=100)
        ctl.draining = True
        decision = ctl.try_admit(("a", 0), "interactive")
        assert not decision.admitted
        assert decision.reason == "draining"

    def test_draining_still_readmits_pending_jobs(self):
        ctl = _controller()
        assert ctl.try_admit(("a", 0), "batch").admitted
        ctl.draining = True
        # The job is already in the window; a retry of it must succeed
        # so in-flight work can still be waited on during drain.
        assert ctl.try_admit(("a", 0), "batch").admitted

    def test_retry_after_scales_with_overload(self):
        ctl = _controller(max_pending=2, retry_after_s=1.0)
        ctl.occupy(("a", 0))
        ctl.occupy(("a", 1))
        at_limit = ctl.try_admit(("b", 0), "interactive").retry_after_s
        ctl.occupy(("a", 2))
        ctl.occupy(("a", 3))
        over_limit = ctl.try_admit(("b", 0), "interactive").retry_after_s
        assert over_limit > at_limit

    def test_occupy_recovers_without_counting_admission(self):
        ctl = _controller(max_pending=2)
        ctl.occupy(("a", 0))
        assert ctl.counters["admitted"] == 0
        assert len(ctl.pending) == 1

    def test_unknown_priority_treated_as_batch(self):
        ctl = _controller(max_pending=4, batch_headroom=0.5)
        ctl.occupy(("a", 0))
        ctl.occupy(("a", 1))
        assert not ctl.try_admit(("b", 0), "turbo").admitted

    def test_snapshot_shape(self):
        ctl = _controller(max_pending=4)
        ctl.try_admit(("a", 0), "batch")
        snap = ctl.snapshot()
        assert snap["pending"] == 1
        assert snap["max_pending"] == 4
        assert snap["draining"] is False
        assert snap["admitted"] == 1
        assert snap["shed"] == 0
