"""Deterministic-replay verification."""

import pytest

from repro.engine.base import EngineOptions
from repro.engine.fluid_runner import FluidEngine
from repro.errors import ReplayDivergenceError
from repro.units import MiB
from repro.verify.replay import canonical_form, check_replay, result_fingerprint
from repro.workload.generator import single_application


def engine_factory(calib, topo, seed=0, noise=True):
    def factory():
        options = EngineOptions() if noise else EngineOptions(noise_enabled=False)
        engine = FluidEngine(
            calib, topo, calib.deployment(stripe_count=4), seed=seed, options=options
        )
        app = single_application(topo, 2, ppn=4, total_bytes=128 * MiB)
        return engine.run([app], rep=1)

    return factory


class TestFingerprint:
    def test_same_seed_same_fingerprint(self, calib_s1, topo_s1):
        f = engine_factory(calib_s1, topo_s1)
        assert result_fingerprint(f()) == result_fingerprint(f())

    def test_different_seed_different_fingerprint(self, calib_s1, topo_s1):
        a = engine_factory(calib_s1, topo_s1, seed=0)()
        b = engine_factory(calib_s1, topo_s1, seed=1)()
        assert result_fingerprint(a) != result_fingerprint(b)

    def test_canonical_form_covers_timing_and_bytes(self, calib_s1, topo_s1):
        form = canonical_form(engine_factory(calib_s1, topo_s1)())
        app = form["apps"][0]
        for key in ("start_time", "end_time", "volume_bytes", "targets", "placement"):
            assert key in app
        for key in ("segments", "retries", "abandoned_flows", "fault_events"):
            assert key in form


class TestCheckReplay:
    def test_deterministic_factory_passes(self, calib_s1, topo_s1):
        fingerprint = check_replay(engine_factory(calib_s1, topo_s1), runs=2)
        assert len(fingerprint) == 64

    def test_nondeterminism_detected(self, calib_s1, topo_s1):
        seeds = iter([0, 1])

        def unstable():
            return engine_factory(calib_s1, topo_s1, seed=next(seeds))()

        with pytest.raises(ReplayDivergenceError, match="diverged"):
            check_replay(unstable, runs=2, context="unstable")

    def test_needs_two_runs(self, calib_s1, topo_s1):
        with pytest.raises(ValueError):
            check_replay(engine_factory(calib_s1, topo_s1), runs=1)
