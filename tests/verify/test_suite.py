"""The verify suite orchestrator: quarantine, injections, exit codes."""

import pytest

from repro.errors import ConfigError, ExperimentError, InvariantViolation
from repro.methodology.plan import ExperimentPlan, ExperimentSpec
from repro.methodology.protocol import ProtocolConfig
from repro.methodology.runner import ProtocolRunner
from repro.verify.level import ValidationLevel
from repro.verify.suite import SuiteReport, run_invariants_suite, run_suite

from ..methodology.test_runner import fake_result


def tiny_plan():
    return ExperimentPlan.build(
        [ExperimentSpec("e", "s")],
        ProtocolConfig(repetitions=2, block_size=2, min_wait_s=0, max_wait_s=0),
        seed=0,
    )


class TestViolationQuarantine:
    def test_violation_quarantined_even_under_fail(self):
        def executor(spec, rep):
            if rep == 0:
                raise InvariantViolation("capacity broke")
            return fake_result()

        store = ProtocolRunner(executor, on_error="fail").run(tiny_plan())
        assert len(store) == 1
        assert [f.error_type for f in store.failures] == ["InvariantViolation"]

    def test_on_violation_fail_reraises(self):
        def executor(spec, rep):
            raise InvariantViolation("capacity broke")

        runner = ProtocolRunner(executor, on_error="skip", on_violation="fail")
        with pytest.raises(InvariantViolation):
            runner.run(tiny_plan())

    def test_plain_crash_still_follows_on_error(self):
        def executor(spec, rep):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            ProtocolRunner(executor, on_error="fail").run(tiny_plan())
        store = ProtocolRunner(executor, on_error="skip").run(tiny_plan())
        assert [f.error_type for f in store.failures] == ["RuntimeError"] * 2

    def test_bad_on_violation_rejected(self):
        with pytest.raises(ExperimentError):
            ProtocolRunner(lambda s, r: fake_result(), on_violation="explode")


class TestSuite:
    def test_unknown_suite_rejected(self):
        with pytest.raises(ConfigError):
            run_suite(suite="vibes")

    def test_unknown_injection_rejected(self):
        with pytest.raises(ConfigError):
            run_suite(suite="invariants", inject="bit-flip")

    def test_level_off_rejected(self):
        with pytest.raises(ConfigError):
            run_suite(suite="invariants", level="off")

    def test_invariants_faults_sweep_passes(self):
        report = SuiteReport(suite="invariants", level=ValidationLevel.PARANOID)
        run_invariants_suite(
            report, ValidationLevel.PARANOID, experiments=("faults",), reps=1
        )
        assert report.ok
        assert report.exit_code() == 0
        assert any("invariants:faults" in p for p in report.passed)

    def test_injection_detected_exits_1(self):
        report = run_suite(
            suite="invariants",
            experiments=("faults",),
            reps=1,
            inject="over-capacity",
        )
        assert report.injection_detected
        assert report.exit_code() == 1

    def test_missed_injection_exits_2(self):
        # byte-loss is only detectable by the PARANOID per-resource
        # integral; at BASIC the verifier must confess it saw nothing.
        report = run_suite(
            suite="invariants",
            level="basic",
            experiments=("faults",),
            reps=1,
            inject="byte-loss",
        )
        assert not report.injection_detected
        assert report.exit_code() == 2

    def test_report_lines_render(self):
        report = SuiteReport(suite="all", level=ValidationLevel.BASIC)
        report.passed.append("something")
        report.failed.append("other thing")
        text = "\n".join(report.lines())
        assert "pass: something" in text
        assert "FAIL: other thing" in text
        assert report.exit_code() == 1
