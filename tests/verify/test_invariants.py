"""The runtime invariant checker, in isolation and inside the engines."""

import numpy as np
import pytest

from repro.engine.base import EngineOptions
from repro.engine.des_runner import DESEngine
from repro.engine.fluid_runner import FluidEngine
from repro.errors import ConfigError, InvariantViolation
from repro.units import MiB
from repro.verify import ValidationLevel, forced_injection, make_checker
from repro.verify.invariants import RuntimeChecker
from repro.workload.generator import single_application


def checker(level=ValidationLevel.PARANOID, **kwargs):
    c = RuntimeChecker(level, context="test", **kwargs)
    c.bind_resources(["link:a", "ost:1"])
    return c


def clean_segment(c, now=0.0, dt=1.0):
    # Two flows, both through both resources, well under capacity and
    # both saturating their flow caps (so the fairness certificate holds).
    c.on_segment(
        now,
        dt,
        capacities=np.array([100.0, 100.0]),
        memberships=[[0, 1], [0, 1]],
        rates_mib_s=np.array([30.0, 30.0]),
        flow_caps=np.array([30.0, 30.0]),
        flow_labels=["f0", "f1"],
    )


class TestLevel:
    def test_parse(self):
        assert ValidationLevel.parse("paranoid") is ValidationLevel.PARANOID
        assert ValidationLevel.parse("off") is ValidationLevel.OFF
        assert ValidationLevel.parse(None) is ValidationLevel.OFF
        assert ValidationLevel.parse(ValidationLevel.BASIC) is ValidationLevel.BASIC

    def test_parse_rejects_unknown(self):
        with pytest.raises(ConfigError):
            ValidationLevel.parse("extreme")

    def test_ordering(self):
        assert ValidationLevel.PARANOID >= ValidationLevel.BASIC
        assert not ValidationLevel.OFF.enabled
        assert ValidationLevel.PARANOID.paranoid
        assert not ValidationLevel.BASIC.paranoid

    def test_make_checker_off_is_none(self):
        assert make_checker(ValidationLevel.OFF) is None
        assert make_checker("off") is None
        assert make_checker("basic") is not None


class TestSegmentChecks:
    def test_clean_segment_passes(self):
        c = checker()
        clean_segment(c)
        assert c.segments_checked == 1

    def test_capacity_violation_raises(self):
        c = checker()
        with pytest.raises(InvariantViolation, match="over capacity"):
            c.on_segment(
                0.0,
                1.0,
                capacities=np.array([100.0, 100.0]),
                memberships=[[0], [0]],
                rates_mib_s=np.array([80.0, 80.0]),
            )

    def test_time_going_backwards_raises(self):
        c = checker()
        clean_segment(c, now=5.0)
        with pytest.raises(InvariantViolation, match="backwards"):
            clean_segment(c, now=4.0)

    def test_negative_rate_raises(self):
        c = checker()
        with pytest.raises(InvariantViolation, match="negative rate"):
            c.on_segment(
                0.0,
                1.0,
                capacities=np.array([100.0, 100.0]),
                memberships=[[0], [1]],
                rates_mib_s=np.array([-1.0, 10.0]),
            )

    def test_fairness_violation_raises_at_paranoid(self):
        c = checker()
        with pytest.raises(InvariantViolation, match="fairness|saturates no"):
            c.on_segment(
                0.0,
                1.0,
                capacities=np.array([100.0, 100.0]),
                memberships=[[0], [1]],
                rates_mib_s=np.array([10.0, 10.0]),  # both could be raised
            )

    def test_basic_skips_fairness(self):
        c = checker(level=ValidationLevel.BASIC)
        c.on_segment(
            0.0,
            1.0,
            capacities=np.array([100.0, 100.0]),
            memberships=[[0], [1]],
            rates_mib_s=np.array([10.0, 10.0]),
        )
        assert c.segments_checked == 1


class TestConservation:
    def test_flow_over_delivery_raises(self):
        c = checker()
        with pytest.raises(InvariantViolation, match="over-delivered"):
            c.flow_complete("f", volume_bytes=MiB, remaining_bytes=-2 * MiB, abandoned=False)

    def test_flow_under_delivery_raises_unless_abandoned(self):
        c = checker()
        with pytest.raises(InvariantViolation, match="undelivered"):
            c.flow_complete("f", volume_bytes=MiB, remaining_bytes=MiB / 2, abandoned=False)
        c.flow_complete("f", volume_bytes=MiB, remaining_bytes=MiB / 2, abandoned=True)

    def test_per_resource_conservation(self):
        c = checker()
        c.expect_bytes([0, 1], 60.0 * MiB)  # one 60 MiB flow over both
        c.on_segment(
            0.0,
            1.0,
            capacities=np.array([100.0, 100.0]),
            memberships=[[0, 1]],
            rates_mib_s=np.array([60.0]),
            flow_caps=np.array([60.0]),
        )
        c.finish()  # integral == expectation

    def test_per_resource_mismatch_raises(self):
        c = checker()
        c.expect_bytes([0, 1], 60.0 * MiB)
        c.on_segment(
            0.0,
            0.5,  # only half the bytes actually move
            capacities=np.array([100.0, 100.0]),
            memberships=[[0, 1]],
            rates_mib_s=np.array([60.0]),
            flow_caps=np.array([60.0]),
        )
        with pytest.raises(InvariantViolation, match="conservation"):
            c.finish()

    def test_retract_balances_abandoned_flows(self):
        c = checker()
        c.expect_bytes([0, 1], 60.0 * MiB)
        c.on_segment(
            0.0,
            0.5,
            capacities=np.array([100.0, 100.0]),
            memberships=[[0, 1]],
            rates_mib_s=np.array([60.0]),
            flow_caps=np.array([60.0]),
        )
        c.retract_bytes([0, 1], 30.0 * MiB)  # the abandoned remainder
        c.finish()


class TestInjection:
    def test_over_capacity_fires_on_clean_segment(self):
        c = checker(inject="over-capacity")
        with pytest.raises(InvariantViolation, match="over capacity"):
            clean_segment(c)

    def test_byte_loss_fires_at_finish(self):
        c = checker(inject="byte-loss")
        c.expect_bytes([0, 1], 60.0 * MiB)
        c.on_segment(
            0.0,
            1.0,
            capacities=np.array([100.0, 100.0]),
            memberships=[[0, 1]],
            rates_mib_s=np.array([60.0]),
            flow_caps=np.array([60.0]),
        )
        with pytest.raises(InvariantViolation, match="conservation"):
            c.finish()

    def test_unknown_injection_rejected(self):
        with pytest.raises(ValueError):
            RuntimeChecker(ValidationLevel.PARANOID, inject="bit-flip")

    def test_forced_injection_scopes_make_checker(self):
        with forced_injection("byte-loss"):
            c = make_checker("paranoid")
            assert c.inject == "byte-loss"
        assert make_checker("paranoid").inject is None

    def test_forced_injection_rejects_unknown(self):
        with pytest.raises(ValueError):
            with forced_injection("bit-flip"):
                pass  # pragma: no cover


class TestEngineIntegration:
    @pytest.mark.parametrize("level", ["basic", "paranoid"])
    def test_fluid_run_validates_clean(self, calib_s1, topo_s1, level):
        options = EngineOptions(noise_enabled=False, validation=ValidationLevel.parse(level))
        engine = FluidEngine(calib_s1, topo_s1, calib_s1.deployment(stripe_count=4), seed=0, options=options)
        app = single_application(topo_s1, 2, ppn=4, total_bytes=128 * MiB)
        result = engine.run([app], rep=0)
        assert result.single.bandwidth_mib_s > 0

    def test_des_run_validates_clean(self, calib_s1, topo_s1):
        options = EngineOptions(noise_enabled=False, validation=ValidationLevel.PARANOID)
        engine = DESEngine(calib_s1, topo_s1, calib_s1.deployment(stripe_count=4), seed=0, options=options)
        app = single_application(topo_s1, 2, ppn=2, total_bytes=64 * MiB)
        result = engine.run([app], rep=0)
        assert result.single.bandwidth_mib_s > 0

    def test_validation_off_is_default_and_identical(self, calib_s1, topo_s1):
        def bw(validation):
            options = EngineOptions(noise_enabled=False, validation=validation)
            engine = FluidEngine(
                calib_s1, topo_s1, calib_s1.deployment(stripe_count=4), seed=0, options=options
            )
            app = single_application(topo_s1, 2, ppn=4, total_bytes=128 * MiB)
            return engine.run([app], rep=0).single.bandwidth_mib_s

        assert EngineOptions().validation is ValidationLevel.OFF
        assert bw(ValidationLevel.OFF) == bw(ValidationLevel.PARANOID)

    def test_injected_engine_run_trips(self, calib_s1, topo_s1):
        options = EngineOptions(noise_enabled=False, validation=ValidationLevel.PARANOID)
        engine = FluidEngine(
            calib_s1, topo_s1, calib_s1.deployment(stripe_count=4), seed=0, options=options
        )
        app = single_application(topo_s1, 2, ppn=4, total_bytes=128 * MiB)
        with forced_injection("over-capacity"):
            with pytest.raises(InvariantViolation):
                engine.run([app], rep=0)
