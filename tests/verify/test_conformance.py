"""The cross-engine conformance harness and its golden store."""

import json

import pytest

from repro.errors import ConfigError
from repro.verify.conformance import (
    CONFORMANCE_SPECS,
    GOLDEN_RTOL,
    RunSpec,
    default_golden_path,
    run_conformance,
)

# One deliberately tiny case so the DES stays fast in unit tests; the
# shipped corpus runs in the CI conformance job and via `repro verify`.
TINY = (RunSpec(name="tiny", num_nodes=2, ppn=2, total_mib=64),)


class TestRunSpec:
    def test_rejects_unknown_fault(self):
        with pytest.raises(ConfigError):
            RunSpec(name="x", fault="meteor-strike")

    def test_rejects_silly_tolerance(self):
        with pytest.raises(ConfigError):
            RunSpec(name="x", tolerance=0.0)

    def test_shipped_corpus_is_well_formed(self):
        names = [s.name for s in CONFORMANCE_SPECS]
        assert len(set(names)) == len(names)
        assert any(s.fault == "degraded-target" for s in CONFORMANCE_SPECS)
        assert {s.scenario for s in CONFORMANCE_SPECS} == {"scenario1", "scenario2"}

    def test_shipped_golden_store_exists_and_matches_corpus(self):
        path = default_golden_path()
        assert path.exists(), "tests/golden/conformance.json must be committed"
        data = json.loads(path.read_text())
        assert data["golden_rtol"] == GOLDEN_RTOL
        assert set(data["cases"]) == {s.name for s in CONFORMANCE_SPECS}


class TestHarness:
    def test_engines_agree_and_golden_roundtrip(self, tmp_path):
        golden = tmp_path / "golden.json"
        first = run_conformance(specs=TINY, golden_path=golden, update_golden=True)
        assert first.ok and first.golden_updated
        assert golden.exists()
        again = run_conformance(specs=TINY, golden_path=golden)
        assert again.ok
        assert not again.missing_golden

    def test_missing_golden_is_reported_not_fatal(self, tmp_path):
        report = run_conformance(specs=TINY, golden_path=tmp_path / "none.json")
        assert report.ok
        assert report.missing_golden == ("tiny",)

    def test_golden_drift_detected(self, tmp_path):
        golden = tmp_path / "golden.json"
        run_conformance(specs=TINY, golden_path=golden, update_golden=True)
        data = json.loads(golden.read_text())
        data["cases"]["tiny"]["fluid_mib_s"] *= 1.01  # simulated model drift
        golden.write_text(json.dumps(data))
        report = run_conformance(specs=TINY, golden_path=golden)
        assert not report.ok
        assert any("drifted" in e for c in report.failures for e in c.golden_errors)

    def test_disagreement_detected(self, tmp_path):
        # An absurdly tight tolerance turns the engines' legitimate
        # model differences into a reported disagreement.
        strict = (RunSpec(name="strict", num_nodes=2, ppn=2, total_mib=64, tolerance=1e-9),)
        report = run_conformance(specs=strict, golden_path=tmp_path / "g.json")
        assert not report.ok
        assert not report.cases[0].agrees

    def test_disagreeing_pair_never_pinned(self, tmp_path):
        golden = tmp_path / "golden.json"
        strict = (RunSpec(name="strict", num_nodes=2, ppn=2, total_mib=64, tolerance=1e-9),)
        report = run_conformance(specs=strict, golden_path=golden, update_golden=True)
        assert not report.golden_updated
        assert not golden.exists()
