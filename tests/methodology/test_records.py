"""Run records and the record store."""

import numpy as np
import pytest

from repro.engine.result import ApplicationResult, RunResult
from repro.errors import ExperimentError
from repro.methodology.records import RecordStore, RunRecord
from repro.units import GiB


def run_result(app_ids=("a",), targets=((101, 201, 202, 203),), placement=(1, 3)):
    apps = tuple(
        ApplicationResult(
            app_id=aid,
            start_time=0.0,
            end_time=32.0,
            volume_bytes=float(32 * GiB),
            num_nodes=8,
            ppn=8,
            stripe_count=4,
            targets=tuple(t),
            placement=tuple(placement),
        )
        for aid, t in zip(app_ids, targets)
    )
    return RunResult(apps=apps, segments=3)


def record(rep=0, stripe=4, **extra):
    return RunRecord.from_run_result(
        run_result(),
        exp_id="fig6",
        scenario="scenario1",
        rep=rep,
        factors={"stripe_count": stripe, **extra},
    )


class TestRunRecord:
    def test_from_run_result(self):
        r = record()
        assert r.bw_mib_s == pytest.approx(1024.0)
        assert r.placement == (1, 3)
        assert r.num_apps == 1

    def test_single_app_accessors_guarded(self):
        r = RunRecord.from_run_result(
            run_result(("a", "b"), ((101,), (201,))), "e", "s", 0, {}
        )
        with pytest.raises(ExperimentError):
            _ = r.bw_mib_s
        with pytest.raises(ExperimentError):
            _ = r.placement

    def test_shared_target_count(self):
        shared = RunRecord.from_run_result(
            run_result(("a", "b"), ((101, 201), (101, 201))), "e", "s", 0, {}
        )
        disjoint = RunRecord.from_run_result(
            run_result(("a", "b"), ((101,), (201,))), "e", "s", 0, {}
        )
        assert shared.shared_target_count() == 2
        assert disjoint.shared_target_count() == 0

    def test_row_roundtrip(self):
        r = record(rep=5, stripe=6, extra_flag="x")
        back = RunRecord.from_row(r.to_row())
        assert back.exp_id == r.exp_id
        assert back.rep == 5
        assert back.factors == dict(r.factors)
        assert back.bw_mib_s == pytest.approx(r.bw_mib_s)
        assert back.placement == r.placement


class TestRecordStore:
    def build(self):
        store = RecordStore()
        for rep in range(5):
            store.append(record(rep=rep, stripe=4))
        for rep in range(3):
            store.append(record(rep=rep, stripe=8))
        return store

    def test_filter_by_factor(self):
        store = self.build()
        assert len(store.filter(stripe_count=4)) == 5
        assert len(store.filter(stripe_count=8)) == 3
        assert len(store.filter(exp_id="nope")) == 0

    def test_filter_predicate(self):
        store = self.build()
        assert len(store.filter(predicate=lambda r: r.rep == 0)) == 2

    def test_bandwidths_array(self):
        values = self.build().bandwidths()
        assert values.shape == (8,)
        assert np.all(values > 0)

    def test_group_by_factor(self):
        groups = self.build().group_by_factor("stripe_count")
        assert set(groups) == {4, 8}
        assert len(groups[4]) == 5

    def test_factor_values_sorted(self):
        assert self.build().factor_values("stripe_count") == [4, 8]

    def test_group_by_placement(self):
        groups = self.build().group_by_placement()
        assert set(groups) == {(1, 3)}

    def test_csv_roundtrip(self, tmp_path):
        store = self.build()
        path = tmp_path / "out" / "records.csv"
        store.write_csv(path)
        back = RecordStore.read_csv(path)
        assert len(back) == len(store)
        assert np.allclose(back.bandwidths(), store.bandwidths())
        assert [r.factors for r in back] == [dict(r.factors) for r in store]

    def test_extend(self):
        a, b = self.build(), self.build()
        a.extend(b)
        assert len(a) == 16
