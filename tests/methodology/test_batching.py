"""Batched worker dispatch: chunking, spool salvage, batch telemetry.

The contract under test: runs travel to workers in batches and come
back through per-batch spool files, yet the merged store stays
byte-identical to the serial runner's — including when a worker dies
mid-batch, where salvage must keep every spooled run and requeue only
the unfinished ones.
"""

import os
import pickle
import signal
import struct

from repro.engine.result import ApplicationResult, RunResult
from repro.methodology.parallel import (
    ParallelProtocolRunner,
    _Batch,
    _Supervisor,
    _Task,
    _WorkerReply,
)
from repro.methodology.plan import ExperimentPlan, ExperimentSpec
from repro.methodology.protocol import ProtocolConfig
from repro.methodology.runner import ProtocolRunner, RunOutcome
from repro.orchestrator.supervise import SupervisionPolicy
from repro.telemetry.bus import get_bus, session
from repro.telemetry.events import validate_event
from repro.units import GiB


def fake_result(duration=10.0):
    app = ApplicationResult(
        app_id="a",
        start_time=0.0,
        end_time=duration,
        volume_bytes=float(GiB),
        num_nodes=1,
        ppn=8,
        stripe_count=4,
        targets=(101,),
        placement=(0, 1),
    )
    return RunResult(apps=(app,), segments=1)


class DeterministicExecutor:
    """Picklable executor whose result depends only on (spec, rep)."""

    def __call__(self, spec, rep):
        return fake_result(duration=10.0 + rep + spec.factors.get("x", 0))


class KillOnceExecutor:
    """Kills its worker with SIGKILL on one chosen run, exactly once.

    The sentinel file (O_CREAT | O_EXCL) makes the fault one-shot across
    worker processes, so the retried run completes and the campaign can
    finish byte-identical to a fault-free one.
    """

    def __init__(self, kill_rep, sentinel):
        self.kill_rep = kill_rep
        self.sentinel = str(sentinel)

    def __call__(self, spec, rep):
        if rep == self.kill_rep and spec.factors.get("x") == 0:
            try:
                fd = os.open(self.sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                pass
            else:
                os.close(fd)
                os.kill(os.getpid(), signal.SIGKILL)
        return fake_result(duration=10.0 + rep + spec.factors.get("x", 0))


def two_spec_plan(repetitions=6):
    return ExperimentPlan.build(
        [ExperimentSpec("e", "s", {"x": i}) for i in range(2)],
        ProtocolConfig(
            repetitions=repetitions, block_size=3, min_wait_s=60, max_wait_s=120
        ),
        seed=3,
    )


def plan_tasks(plan):
    tasks = []
    ordinal = 0
    for block_index, block in enumerate(plan.blocks):
        for planned in block:
            tasks.append(_Task(ordinal, planned, block_index))
            ordinal += 1
    return tasks


def store_bytes(store, tmp_path, name):
    path = tmp_path / f"{name}.json"
    store.write_json(path)
    return path.read_text()


def make_supervisor(tmp_path, n_workers=2, policy=None):
    runner = ParallelProtocolRunner(
        DeterministicExecutor(), n_workers=n_workers, policy=policy
    )
    stats = {"worker_deaths": 0, "requeues": 0, "quarantines": 0}
    return _Supervisor(runner, get_bus(), None, stats, {}, tmp_path)


class TestBatchTelemetry:
    def run_captured(self, n_workers=2):
        plan = two_spec_plan()
        runner = ParallelProtocolRunner(
            DeterministicExecutor(), n_workers=n_workers, seed=5
        )
        with session(ring=8192, level="debug") as bus:
            runner.run(plan)
            return runner, bus.ring.events

    def test_batch_events_cover_every_dispatch(self):
        _, events = self.run_captured()
        batches = [e for e in events if e["event"] == "orchestrator.batch"]
        dispatches = [e for e in events if e["event"] == "orchestrator.dispatch"]
        assert batches
        assert sum(e["size"] for e in batches) == len(dispatches) == 12
        # Every dispatch names the batch that carried it.
        ids = {e["batch"] for e in batches}
        assert all(e["batch"] in ids for e in dispatches)
        assert all(1 <= e["specs"] <= e["size"] for e in batches)
        assert [p for e in events for p in validate_event(e)] == []

    def test_transfer_stats_account_for_every_run(self):
        runner, _ = self.run_captured()
        t = runner.transfer_stats
        assert t["jobs"] == t["frames"] == 12
        assert 1 <= t["batches"] <= 12
        assert t["specs"] <= t["jobs"]
        assert t["spool_bytes"] > 0
        assert t["dispatch_overhead_s"] >= 0.0


class TestChunking:
    def test_chunk_size_adapts_to_queue_depth(self, tmp_path):
        sup = make_supervisor(tmp_path, n_workers=2)
        assert sup._chunk_size() == 1  # empty queue
        sup.pending.extend(plan_tasks(two_spec_plan(repetitions=40)))
        # 80 outstanding / (2 workers * 4) = 10, capped by the window (8).
        assert sup._chunk_size() == 8
        sup.pending.clear()
        sup.pending.extend(plan_tasks(two_spec_plan())[:4])
        assert sup._chunk_size() == 1  # stragglers spread across workers

    def test_chunk_size_respects_max_batch(self, tmp_path):
        sup = make_supervisor(
            tmp_path, n_workers=2, policy=SupervisionPolicy(max_batch=3)
        )
        sup.pending.extend(plan_tasks(two_spec_plan(repetitions=40)))
        assert sup._chunk_size() == 3

    def test_max_batch_one_is_byte_identical(self, tmp_path):
        # Per-run dispatch (max_batch=1) and batched dispatch produce
        # the same store as the serial runner, bit for bit.
        plan = two_spec_plan()
        expected = store_bytes(
            ProtocolRunner(DeterministicExecutor()).run(plan), tmp_path, "serial"
        )
        for max_batch in (1, 4):
            store = ParallelProtocolRunner(
                DeterministicExecutor(),
                n_workers=2,
                policy=SupervisionPolicy(max_batch=max_batch),
            ).run(plan)
            assert store_bytes(store, tmp_path, f"mb{max_batch}") == expected


class TestSpoolSalvage:
    def _frame(self, ordinal):
        reply = _WorkerReply(
            pid=1, elapsed_s=0.0, outcome=RunOutcome(result=fake_result())
        )
        payload = pickle.dumps((ordinal, reply), protocol=pickle.HIGHEST_PROTOCOL)
        return struct.pack("<I", len(payload)) + payload

    def _batch(self, tmp_path, tasks):
        return _Batch(
            batch_id=1, spool=tmp_path / "b.bin", tasks={t.ordinal: t for t in tasks}
        )

    def test_collect_stops_at_torn_tail_and_resumes(self, tmp_path):
        sup = make_supervisor(tmp_path)
        tasks = plan_tasks(two_spec_plan())[:3]
        batch = self._batch(tmp_path, tasks)
        frames = [self._frame(t.ordinal) for t in tasks]
        good = frames[0] + frames[1]
        batch.spool.write_bytes(good + frames[2][: len(frames[2]) // 2])
        sup._collect(batch)
        assert sorted(sup.results) == [tasks[0].ordinal, tasks[1].ordinal]
        assert batch.offset == len(good)
        assert list(batch.tasks) == [tasks[2].ordinal]
        # The tail completes later (worker finished the write): a second
        # collect picks up exactly the remaining frame, nothing twice.
        batch.spool.write_bytes(good + frames[2])
        sup._collect(batch)
        assert sorted(sup.results) == [t.ordinal for t in tasks]
        assert batch.tasks == {}
        assert sup.transfer["frames"] == 3

    def test_collect_stops_at_corrupt_frame(self, tmp_path):
        sup = make_supervisor(tmp_path)
        tasks = plan_tasks(two_spec_plan())[:2]
        batch = self._batch(tmp_path, tasks)
        frame = self._frame(tasks[0].ordinal)
        garbage = struct.pack("<I", 10) + b"x" * 10
        batch.spool.write_bytes(frame + garbage)
        sup._collect(batch)
        assert list(sup.results) == [tasks[0].ordinal]
        assert batch.offset == len(frame)  # stops at the last good frame

    def test_missing_spool_is_harmless(self, tmp_path):
        sup = make_supervisor(tmp_path)
        batch = self._batch(tmp_path, plan_tasks(two_spec_plan())[:1])
        sup._collect(batch)  # never written: no results, no error
        assert sup.results == {}


class TestPartialBatchSalvage:
    def test_kill_mid_batch_requeues_only_unfinished(self, tmp_path):
        plan = two_spec_plan()
        serial = store_bytes(
            ProtocolRunner(DeterministicExecutor()).run(plan), tmp_path, "serial"
        )
        policy = SupervisionPolicy(
            run_timeout_s=30.0,
            heartbeat_s=0.05,
            max_retries=3,
            backoff_base_s=0.01,
            backoff_cap_s=0.05,
        )
        runner = ParallelProtocolRunner(
            KillOnceExecutor(kill_rep=2, sentinel=tmp_path / "killed"),
            n_workers=2,
            policy=policy,
        )
        store = runner.run(plan)
        assert (tmp_path / "killed").exists()
        requeues = runner.supervision_stats["requeues"]
        assert requeues >= 1
        t = runner.transfer_stats
        # Salvage kept every spooled frame: each merged run crossed the
        # spool exactly once...
        assert t["frames"] == plan.num_runs
        # ...and only the interrupted runs were dispatched again.
        assert t["jobs"] == plan.num_runs + requeues
        assert store_bytes(store, tmp_path, "salvaged") == serial
