"""The parallel protocol runner: serial-identical results, worker telemetry."""

import json
import os

import pytest

from repro.engine.result import ApplicationResult, RunResult
from repro.errors import ExperimentError
from repro.methodology.parallel import ParallelProtocolRunner
from repro.methodology.plan import ExperimentPlan, ExperimentSpec
from repro.methodology.protocol import ProtocolConfig
from repro.methodology.records import RecordStore
from repro.methodology.runner import ProtocolRunner
from repro.orchestrator.supervise import SupervisionPolicy
from repro.telemetry.bus import session
from repro.telemetry.events import validate_event
from repro.units import GiB


def fake_result(duration=10.0):
    app = ApplicationResult(
        app_id="a",
        start_time=0.0,
        end_time=duration,
        volume_bytes=float(GiB),
        num_nodes=1,
        ppn=8,
        stripe_count=4,
        targets=(101,),
        placement=(0, 1),
    )
    return RunResult(apps=(app,), segments=1)


class DeterministicExecutor:
    """Picklable executor whose result depends only on (spec, rep)."""

    def __init__(self, fail_reps=()):
        self.fail_reps = frozenset(fail_reps)

    def __call__(self, spec, rep):
        if rep in self.fail_reps:
            raise RuntimeError(f"boom rep {rep}")
        return fake_result(duration=10.0 + rep + spec.factors.get("x", 0))


class DyingExecutor:
    """Kills its worker process outright (simulates OOM/signal death)."""

    def __call__(self, spec, rep):
        os._exit(1)


def two_spec_plan(repetitions=6):
    return ExperimentPlan.build(
        [ExperimentSpec("e", "s", {"x": i}) for i in range(2)],
        ProtocolConfig(
            repetitions=repetitions, block_size=3, min_wait_s=60, max_wait_s=120
        ),
        seed=3,
    )


def store_bytes(store, tmp_path, name):
    path = tmp_path / f"{name}.json"
    store.write_json(path)
    return path.read_text()


class TestSerialParallelEquivalence:
    def test_stores_byte_identical_across_worker_counts(self, tmp_path):
        plan = two_spec_plan()
        serial = ProtocolRunner(DeterministicExecutor()).run(plan)
        expected = store_bytes(serial, tmp_path, "serial")
        for workers in (2, 4):
            store = ParallelProtocolRunner(
                DeterministicExecutor(), n_workers=workers
            ).run(plan)
            assert store_bytes(store, tmp_path, f"w{workers}") == expected

    def test_identical_with_quarantined_failures(self, tmp_path):
        plan = two_spec_plan()
        serial = ProtocolRunner(
            DeterministicExecutor(fail_reps={1, 4}), on_error="skip"
        ).run(plan)
        parallel = ParallelProtocolRunner(
            DeterministicExecutor(fail_reps={1, 4}), on_error="skip", n_workers=2
        ).run(plan)
        assert len(serial.failures) == 4  # two specs x two failing reps
        assert store_bytes(parallel, tmp_path, "p") == store_bytes(
            serial, tmp_path, "s"
        )

    def test_single_worker_falls_back_to_serial_path(self, tmp_path):
        plan = two_spec_plan()
        serial = ProtocolRunner(DeterministicExecutor()).run(plan)
        solo = ParallelProtocolRunner(DeterministicExecutor(), n_workers=1).run(plan)
        assert store_bytes(solo, tmp_path, "solo") == store_bytes(
            serial, tmp_path, "serial"
        )

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ExperimentError):
            ParallelProtocolRunner(DeterministicExecutor(), n_workers=0)


class TestFailPolicy:
    def test_fail_raises_and_checkpoints_like_serial(self, tmp_path):
        plan = two_spec_plan()
        serial_path = tmp_path / "serial.json"
        with pytest.raises(RuntimeError, match="boom"):
            ProtocolRunner(
                DeterministicExecutor(fail_reps={3}),
                checkpoint_path=serial_path,
                checkpoint_every=100,
            ).run(plan)
        parallel_path = tmp_path / "parallel.json"
        # Worker exceptions cannot cross the pickling boundary as live
        # objects; the fail policy re-raises them as ExperimentError
        # carrying the original type name and message.
        with pytest.raises(ExperimentError, match="RuntimeError: boom rep 3"):
            ParallelProtocolRunner(
                DeterministicExecutor(fail_reps={3}),
                n_workers=2,
                checkpoint_path=parallel_path,
                checkpoint_every=100,
            ).run(plan)
        assert parallel_path.read_text() == serial_path.read_text()

    def test_resume_after_failure_matches_serial_resume(self, tmp_path):
        plan = two_spec_plan()
        stores = {}
        for name, cls, kwargs in (
            ("serial", ProtocolRunner, {}),
            ("parallel", ParallelProtocolRunner, {"n_workers": 2}),
        ):
            path = tmp_path / f"{name}.json"
            with pytest.raises((RuntimeError, ExperimentError)):
                cls(
                    DeterministicExecutor(fail_reps={4}),
                    checkpoint_path=path,
                    **kwargs,
                ).run(plan)
            assert 0 < len(RecordStore.read_json(path)) < plan.num_runs
            stores[name] = cls(
                DeterministicExecutor(), checkpoint_path=path, **kwargs
            ).resume(plan)
        assert len(stores["parallel"]) == plan.num_runs
        assert store_bytes(stores["parallel"], tmp_path, "p-final") == store_bytes(
            stores["serial"], tmp_path, "s-final"
        )

    def test_dead_worker_surfaces_as_structured_failure(self):
        plan = ExperimentPlan.build(
            [ExperimentSpec("e", "s")],
            ProtocolConfig(repetitions=2, block_size=2, min_wait_s=0, max_wait_s=0),
        )
        policy = SupervisionPolicy(max_retries=1, backoff_base_s=0.01, backoff_cap_s=0.05)
        runner = ParallelProtocolRunner(
            DyingExecutor(), n_workers=2, on_error="skip", policy=policy
        )
        store = runner.run(plan)
        assert len(store) == 0
        assert len(store.failures) == 2
        # Each run is retried once (the budget), then quarantined with
        # the structured infra error type.
        assert all(f.error_type == "WorkerCrashed" for f in store.failures)
        assert runner.supervision_stats["requeues"] == 2
        assert runner.supervision_stats["quarantines"] == 2


class TestWorkerTelemetry:
    def run_captured(self, **runner_kwargs):
        plan = two_spec_plan(repetitions=2)
        with session(ring=4096) as bus:
            ParallelProtocolRunner(
                DeterministicExecutor(), n_workers=2, seed=11, **runner_kwargs
            ).run(plan)
            return bus.ring.events

    def test_events_schema_valid(self):
        events = self.run_captured()
        problems = [p for e in events for p in validate_event(e)]
        assert problems == []

    def test_worker_brackets_carry_attribution(self):
        events = self.run_captured()
        starts = [e for e in events if e["event"] == "worker.start"]
        ends = [e for e in events if e["event"] == "worker.end"]
        assert len(starts) == len(ends) == 4
        for e in starts + ends:
            assert e["seed"] == 11
            assert e["rep"] in (0, 1)
            assert e["worker"] >= 0
        assert all(e["status"] == "ok" for e in ends)
        assert all(e["elapsed_s"] >= 0 for e in ends)

    def test_run_ends_interleave_with_worker_brackets(self):
        events = self.run_captured()
        kinds = [
            e["event"]
            for e in events
            if e["event"] in ("run.start", "worker.start", "run.end", "worker.end")
        ]
        # Per merged run: run.start, worker.start, run.end, worker.end.
        assert kinds == ["run.start", "worker.start", "run.end", "worker.end"] * 4

    def test_checkpoint_events_count_runs(self, tmp_path):
        events = self.run_captured(
            checkpoint_path=tmp_path / "c.json", checkpoint_every=2
        )
        checkpoints = [e for e in events if e["event"] == "checkpoint.write"]
        assert checkpoints
        assert checkpoints[-1]["records"] == 4
