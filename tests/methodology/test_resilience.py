"""Campaign resilience: quarantine, checkpointing, resume."""

import json

import pytest

from repro.engine.result import ApplicationResult, RunResult
from repro.errors import CheckpointError, ExperimentError
from repro.methodology.plan import ExperimentPlan, ExperimentSpec
from repro.methodology.protocol import ProtocolConfig
from repro.methodology.records import FailedRunRecord, RecordStore, RunRecord
from repro.methodology.runner import ProtocolRunner
from repro.units import GiB


def fake_result(duration=10.0):
    app = ApplicationResult(
        app_id="a",
        start_time=0.0,
        end_time=duration,
        volume_bytes=float(GiB),
        num_nodes=1,
        ppn=8,
        stripe_count=4,
        targets=(101,),
        placement=(0, 1),
    )
    return RunResult(apps=(app,), segments=1)


def small_plan(repetitions=6):
    return ExperimentPlan.build(
        [ExperimentSpec("e", "s", {"x": 1})],
        ProtocolConfig(repetitions=repetitions, block_size=2, min_wait_s=0, max_wait_s=0),
        seed=0,
    )


class FlakyExecutor:
    """Raises on a chosen set of repetition indices; records its calls."""

    def __init__(self, fail_reps=()):
        self.fail_reps = set(fail_reps)
        self.calls = []

    def __call__(self, spec, rep):
        self.calls.append(rep)
        if rep in self.fail_reps:
            raise RuntimeError(f"boom rep {rep}")
        return fake_result()


class TestOnError:
    def test_fail_is_default_and_reraises(self):
        with pytest.raises(RuntimeError, match="boom"):
            ProtocolRunner(FlakyExecutor(fail_reps={0})).run(small_plan())

    def test_invalid_policy_rejected(self):
        with pytest.raises(ExperimentError):
            ProtocolRunner(FlakyExecutor(), on_error="retry")

    def test_invalid_checkpoint_every_rejected(self):
        with pytest.raises(ExperimentError):
            ProtocolRunner(FlakyExecutor(), checkpoint_every=0)

    def test_skip_quarantines_and_continues(self):
        executor = FlakyExecutor(fail_reps={1, 3})
        store = ProtocolRunner(executor, on_error="skip").run(small_plan())
        assert len(store) == 4
        assert sorted(f.rep for f in store.failures) == [1, 3]
        failure = store.failures[0]
        assert failure.error_type == "RuntimeError"
        assert "boom" in failure.message
        assert failure.exp_id == "e"
        assert len(executor.calls) == 6  # every run attempted exactly once

    def test_fail_checkpoints_before_raising(self, tmp_path):
        path = tmp_path / "ckpt.json"
        executor = FlakyExecutor(fail_reps={3})
        with pytest.raises(RuntimeError):
            ProtocolRunner(executor, checkpoint_path=path, checkpoint_every=100).run(
                small_plan()
            )
        assert path.exists()
        saved = RecordStore.read_json(path)
        assert len(saved) == len(executor.calls) - 1


class TestCheckpointing:
    def test_periodic_and_final_checkpoint(self, tmp_path):
        path = tmp_path / "ckpt.json"
        store = ProtocolRunner(
            FlakyExecutor(), checkpoint_path=path, checkpoint_every=2
        ).run(small_plan())
        saved = RecordStore.read_json(path)
        assert saved.completed_keys() == store.completed_keys()
        assert len(saved) == 6

    def test_checkpoint_round_trips_failures(self, tmp_path):
        path = tmp_path / "ckpt.json"
        ProtocolRunner(
            FlakyExecutor(fail_reps={2}), on_error="skip", checkpoint_path=path
        ).run(small_plan())
        saved = RecordStore.read_json(path)
        assert len(saved.failures) == 1
        assert saved.failures[0].rep == 2

    def test_read_json_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError):
            RecordStore.read_json(tmp_path / "absent.json")

    def test_read_json_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{ not json")
        with pytest.raises(CheckpointError):
            RecordStore.read_json(path)

    def test_read_json_wrong_shape(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text(json.dumps({"rows": []}))
        with pytest.raises(CheckpointError):
            RecordStore.read_json(path)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "out.json"
        RecordStore().write_json(path)
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_failed_write_preserves_previous_version(self, tmp_path):
        path = tmp_path / "out.json"
        store = RecordStore()
        store.write_json(path)
        before = path.read_text()

        class Unserializable:
            pass

        bad = RecordStore(
            failures=[
                FailedRunRecord(
                    exp_id="e",
                    scenario="s",
                    rep=0,
                    factors={"x": Unserializable()},
                    error_type="T",
                    message="m",
                )
            ]
        )
        with pytest.raises(TypeError):
            bad.write_json(path)
        assert path.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]


class TestResume:
    def test_resume_requires_checkpoint_path(self):
        with pytest.raises(ExperimentError):
            ProtocolRunner(FlakyExecutor()).resume(small_plan())

    def test_resume_without_existing_file_runs_everything(self, tmp_path):
        executor = FlakyExecutor()
        store = ProtocolRunner(
            executor, checkpoint_path=tmp_path / "ckpt.json"
        ).resume(small_plan())
        assert len(store) == 6
        assert len(executor.calls) == 6

    def test_resume_runs_only_missing_pairs(self, tmp_path):
        path = tmp_path / "ckpt.json"
        plan = small_plan()
        # Interrupted campaign: dies on rep 3 after checkpointing 2 records.
        first = FlakyExecutor(fail_reps={3})
        with pytest.raises(RuntimeError):
            ProtocolRunner(first, checkpoint_path=path).run(plan)
        completed = len(RecordStore.read_json(path))
        assert 0 < completed < 6
        # Resume executes exactly the missing repetitions.
        second = FlakyExecutor()
        store = ProtocolRunner(second, checkpoint_path=path).resume(plan)
        assert len(store) == 6
        assert len(second.calls) == 6 - completed
        assert set(second.calls).isdisjoint(first.calls[:-1])
        assert len(store.completed_keys()) == 6

    def test_resume_retries_quarantined_failures(self, tmp_path):
        path = tmp_path / "ckpt.json"
        plan = small_plan()
        ProtocolRunner(
            FlakyExecutor(fail_reps={1}), on_error="skip", checkpoint_path=path
        ).run(plan)
        second = FlakyExecutor()
        store = ProtocolRunner(second, on_error="skip", checkpoint_path=path).resume(plan)
        assert second.calls == [1]
        assert len(store) == 6
        assert store.failures == []

    def test_resume_continues_wall_clock(self, tmp_path):
        path = tmp_path / "ckpt.json"
        plan = small_plan()
        with pytest.raises(RuntimeError):
            ProtocolRunner(FlakyExecutor(fail_reps={4}), checkpoint_path=path).run(plan)
        saved_max = RecordStore.read_json(path).max_wall_clock_s()
        store = ProtocolRunner(FlakyExecutor(), checkpoint_path=path).resume(plan)
        resumed = [r for r in store if r.wall_clock_s >= saved_max]
        assert resumed  # the re-executed runs continue, not restart, the clock


class TestRecordFaultFields:
    def test_csv_round_trip_with_fault_fields(self, tmp_path):
        record = RunRecord(
            exp_id="e",
            scenario="s",
            rep=0,
            factors={"x": 1},
            aggregate_bw_mib_s=100.0,
            apps=(
                {
                    "app_id": "a",
                    "bw_mib_s": 100.0,
                    "start_s": 0.0,
                    "end_s": 1.0,
                    "volume_bytes": 1.0,
                    "num_nodes": 1,
                    "ppn": 8,
                    "stripe_count": 4,
                    "targets": (101,),
                    "placement": (0, 1),
                },
            ),
            retries=3,
            complete=False,
            fault_events=({"time": 1.0, "flow_id": "f", "action": "retry", "attempt": 1},),
        )
        store = RecordStore([record])
        path = tmp_path / "records.csv"
        store.write_csv(path)
        loaded = next(iter(RecordStore.read_csv(path)))
        assert loaded.retries == 3
        assert loaded.complete is False
        assert loaded.fault_events[0]["action"] == "retry"

    def test_rows_without_fault_fields_still_load(self, tmp_path):
        """CSV files written before fault tracking remain readable."""
        record = RunRecord(
            exp_id="e",
            scenario="s",
            rep=0,
            factors={},
            aggregate_bw_mib_s=1.0,
            apps=(),
        )
        row = {
            k: v
            for k, v in record.to_row().items()
            if k not in ("retries", "complete", "fault_events")
        }
        loaded = RunRecord.from_row(row)
        assert loaded.retries == 0
        assert loaded.complete is True
        assert loaded.fault_events == ()


class TestFailedRunRetryTraces:
    """Quarantined runs keep their retry traces through checkpoints."""

    TRACE = (
        {"time": 1.0, "flow_id": "app0:n1:201", "action": "retry", "attempt": 1},
        {"time": 2.5, "flow_id": "app0:n1:201", "action": "abandon", "attempt": 2},
    )

    def failure(self):
        return FailedRunRecord(
            exp_id="e",
            scenario="s",
            rep=3,
            factors={"x": 1},
            error_type="SimulationError",
            message="boom",
            retries=2,
            flow_trace=self.TRACE,
        )

    def test_to_dict_carries_retries_and_trace(self):
        data = self.failure().to_dict()
        assert data["retries"] == 2
        assert data["flow_trace"][1]["action"] == "abandon"

    def test_round_trip_preserves_trace(self):
        loaded = FailedRunRecord.from_dict(self.failure().to_dict())
        assert loaded.retries == 2
        assert loaded.flow_trace == self.TRACE

    def test_old_checkpoints_without_trace_still_load(self):
        data = self.failure().to_dict()
        del data["retries"]
        del data["flow_trace"]
        loaded = FailedRunRecord.from_dict(data)
        assert loaded.retries == 0
        assert loaded.flow_trace == ()

    def test_checkpoint_json_round_trips_trace(self, tmp_path):
        store = RecordStore()
        store.failures.append(self.failure())
        path = tmp_path / "ckpt.json"
        store.write_json(path)
        loaded = RecordStore.read_json(path)
        assert loaded.failures[0].retries == 2
        assert loaded.failures[0].flow_trace == self.TRACE

    def test_runner_attaches_annotated_trace(self):
        class AnnotatingExecutor:
            def __call__(self, spec, rep):
                exc = RuntimeError("boom")
                exc.flow_retries = 4
                exc.flow_trace = TestFailedRunRetryTraces.TRACE
                raise exc

        store = ProtocolRunner(AnnotatingExecutor(), on_error="skip").run(small_plan(2))
        assert all(f.retries == 4 for f in store.failures)
        assert store.failures[0].flow_trace == self.TRACE


class TestRetriedFailureArchive:
    """Resume keeps, not discards, the quarantine history of prior attempts."""

    def test_archive_failures_moves_and_counts(self):
        store = RecordStore()
        store.failures.append(
            FailedRunRecord(
                exp_id="e", scenario="s", rep=1, factors={}, error_type="T", message="m"
            )
        )
        assert store.archive_failures() == 1
        assert store.failures == []
        assert len(store.retried_failures) == 1
        assert store.retried_failures[0].rep == 1

    def test_archive_is_cumulative(self):
        store = RecordStore()
        for rep in (1, 2):
            store.failures.append(
                FailedRunRecord(
                    exp_id="e", scenario="s", rep=rep, factors={}, error_type="T", message="m"
                )
            )
            store.archive_failures()
        assert [f.rep for f in store.retried_failures] == [1, 2]

    def test_retried_failures_round_trip_json(self, tmp_path):
        store = RecordStore()
        store.failures.append(
            FailedRunRecord(
                exp_id="e", scenario="s", rep=3, factors={"x": 1}, error_type="T", message="m"
            )
        )
        store.archive_failures()
        path = tmp_path / "ckpt.json"
        store.write_json(path)
        loaded = RecordStore.read_json(path)
        assert loaded.failures == []
        assert len(loaded.retried_failures) == 1
        assert loaded.retried_failures[0].rep == 3

    def test_old_checkpoints_without_archive_still_load(self, tmp_path):
        path = tmp_path / "ckpt.json"
        RecordStore().write_json(path)
        data = json.loads(path.read_text())
        del data["retried_failures"]
        path.write_text(json.dumps(data))
        assert RecordStore.read_json(path).retried_failures == []

    def test_resume_archives_prior_attempt(self, tmp_path):
        path = tmp_path / "ckpt.json"
        plan = small_plan()
        ProtocolRunner(
            FlakyExecutor(fail_reps={1}), on_error="skip", checkpoint_path=path
        ).run(plan)
        store = ProtocolRunner(
            FlakyExecutor(), on_error="skip", checkpoint_path=path
        ).resume(plan)
        assert store.failures == []
        assert [f.rep for f in store.retried_failures] == [1]
        # The final checkpoint preserves the archived history on disk.
        assert [f.rep for f in RecordStore.read_json(path).retried_failures] == [1]

    def test_resume_archive_survives_repeated_failures(self, tmp_path):
        path = tmp_path / "ckpt.json"
        plan = small_plan()
        ProtocolRunner(
            FlakyExecutor(fail_reps={1}), on_error="skip", checkpoint_path=path
        ).run(plan)
        # The retry fails again: one fresh quarantine, one archived.
        store = ProtocolRunner(
            FlakyExecutor(fail_reps={1}), on_error="skip", checkpoint_path=path
        ).resume(plan)
        assert [f.rep for f in store.failures] == [1]
        assert [f.rep for f in store.retried_failures] == [1]
