"""The protocol runner."""

import pytest

from repro.engine.result import ApplicationResult, RunResult
from repro.errors import ExperimentError
from repro.methodology.plan import ExperimentPlan, ExperimentSpec
from repro.methodology.protocol import ProtocolConfig
from repro.methodology.runner import ProtocolRunner
from repro.units import GiB


def fake_result(duration=10.0):
    app = ApplicationResult(
        app_id="a",
        start_time=0.0,
        end_time=duration,
        volume_bytes=float(GiB),
        num_nodes=1,
        ppn=8,
        stripe_count=4,
        targets=(101,),
        placement=(0, 1),
    )
    return RunResult(apps=(app,), segments=1)


class TestRunner:
    def test_executes_every_planned_run(self):
        calls = []

        def executor(spec, rep):
            calls.append((spec.key, rep))
            return fake_result()

        plan = ExperimentPlan.build(
            [ExperimentSpec("e", "s", {"x": i}) for i in range(2)],
            ProtocolConfig(repetitions=6, block_size=3, min_wait_s=0, max_wait_s=0),
            seed=0,
        )
        store = ProtocolRunner(executor).run(plan)
        assert len(store) == 12
        assert len(calls) == 12
        assert len(set(calls)) == 12  # every (spec, rep) exactly once

    def test_wall_clock_accumulates_runs_and_waits(self):
        plan = ExperimentPlan.build(
            [ExperimentSpec("e", "s")],
            ProtocolConfig(repetitions=4, block_size=2, min_wait_s=100, max_wait_s=100),
            seed=0,
        )
        store = ProtocolRunner(lambda s, r: fake_result(duration=10.0)).run(plan)
        clocks = sorted(r.wall_clock_s for r in store)
        # Runs: 0, 10, (wait 100) 120, 130.
        assert clocks == [0.0, 10.0, 120.0, 130.0]

    def test_block_indices_recorded(self):
        plan = ExperimentPlan.build(
            [ExperimentSpec("e", "s")],
            ProtocolConfig(repetitions=4, block_size=2, min_wait_s=0, max_wait_s=0),
            seed=0,
        )
        store = ProtocolRunner(lambda s, r: fake_result()).run(plan)
        assert sorted({r.block for r in store}) == [0, 1]

    def test_progress_callback(self):
        plan = ExperimentPlan.build(
            [ExperimentSpec("e", "s")],
            ProtocolConfig(repetitions=2, block_size=1, min_wait_s=0, max_wait_s=0),
        )
        messages = []
        ProtocolRunner(lambda s, r: fake_result()).run(plan, progress=messages.append)
        assert len(messages) == 2

    def test_bad_executor_return(self):
        plan = ExperimentPlan.build(
            [ExperimentSpec("e", "s")],
            ProtocolConfig(repetitions=1, block_size=1, min_wait_s=0, max_wait_s=0),
        )
        with pytest.raises(ExperimentError):
            ProtocolRunner(lambda s, r: "nope").run(plan)
