"""Experiment plans: the Section III-C protocol mechanics."""

import pytest

from repro.errors import ExperimentError
from repro.methodology.plan import ExperimentPlan, ExperimentSpec, PlannedRun
from repro.methodology.protocol import ProtocolConfig


def specs(n=3):
    return [
        ExperimentSpec("fig6", "scenario1", {"stripe_count": k + 1}) for k in range(n)
    ]


class TestSpec:
    def test_key_is_stable_and_sorted(self):
        a = ExperimentSpec("e", "s", {"b": 2, "a": 1})
        b = ExperimentSpec("e", "s", {"a": 1, "b": 2})
        assert a.key == b.key
        assert "a=1" in a.key and a.key.index("a=1") < a.key.index("b=2")

    def test_empty_id_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentSpec("", "s")

    def test_negative_rep_rejected(self):
        with pytest.raises(ExperimentError):
            PlannedRun(ExperimentSpec("e", "s"), rep=-1)


class TestPlanBuild:
    def test_paper_protocol_structure(self):
        """100 reps in blocks of 10 -> 10 blocks per configuration."""
        protocol = ProtocolConfig()  # the paper's defaults
        plan = ExperimentPlan.build(specs(2), protocol, seed=1)
        assert plan.num_runs == 200
        assert len(plan.blocks) == 20
        assert all(len(b) == 10 for b in plan.blocks)

    def test_blocks_are_homogeneous(self):
        plan = ExperimentPlan.build(specs(3), ProtocolConfig(repetitions=20), seed=1)
        for block in plan.blocks:
            assert len({run.spec.key for run in block}) == 1

    def test_every_repetition_present_exactly_once(self):
        plan = ExperimentPlan.build(specs(2), ProtocolConfig(repetitions=30), seed=5)
        for spec in specs(2):
            reps = sorted(r.rep for r in plan.runs_of(spec))
            assert reps == list(range(30))

    def test_shuffling_is_seeded(self):
        p1 = ExperimentPlan.build(specs(3), ProtocolConfig(repetitions=20), seed=7)
        p2 = ExperimentPlan.build(specs(3), ProtocolConfig(repetitions=20), seed=7)
        p3 = ExperimentPlan.build(specs(3), ProtocolConfig(repetitions=20), seed=8)
        keys = lambda p: [b[0].spec.key for b in p.blocks]
        assert keys(p1) == keys(p2)
        assert keys(p1) != keys(p3)

    def test_shuffle_actually_interleaves(self):
        plan = ExperimentPlan.build(specs(3), ProtocolConfig(repetitions=50), seed=2)
        order = [b[0].spec.key for b in plan.blocks]
        # Not all blocks of one spec contiguous.
        first_spec = order[0]
        positions = [i for i, k in enumerate(order) if k == first_spec]
        assert positions[-1] - positions[0] >= len(positions)

    def test_waits_in_paper_range(self):
        plan = ExperimentPlan.build(specs(1), ProtocolConfig(), seed=0)
        assert all(60.0 <= w <= 1800.0 for w in plan.waits_s)
        assert plan.total_wait_s() > 0

    def test_quick_protocol_no_waits(self):
        plan = ExperimentPlan.build(specs(1), ProtocolConfig().quick(6), seed=0)
        assert plan.total_wait_s() == 0.0
        assert plan.num_runs == 6

    def test_duplicate_specs_rejected(self):
        s = specs(1)
        with pytest.raises(ExperimentError):
            ExperimentPlan.build(s + s, ProtocolConfig(repetitions=5))

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentPlan.build([], ProtocolConfig())

    def test_block_of(self):
        plan = ExperimentPlan.build(specs(1), ProtocolConfig(repetitions=10), seed=0)
        run = plan.blocks[0][0]
        assert plan.block_of(run) == 0


class TestProtocolConfig:
    def test_defaults_match_paper(self):
        protocol = ProtocolConfig()
        assert protocol.repetitions == 100
        assert protocol.block_size == 10
        assert protocol.min_wait_s == 60.0  # 1 minute
        assert protocol.max_wait_s == 1800.0  # 30 minutes

    def test_validation(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ProtocolConfig(repetitions=0)
        with pytest.raises(ConfigError):
            ProtocolConfig(min_wait_s=100, max_wait_s=10)
