"""The fsync'd JSONL journal: durable appends, tolerant reads."""

import json
import multiprocessing
import os
import signal

from repro.orchestrator.journal import Journal, fsync_dir, read_records


class TestJournal:
    def test_append_read_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"op": "a", "n": 1})
        journal.append({"op": "b", "n": 2})
        journal.close()
        records, torn = read_records(path)
        assert torn == 0
        assert records == [{"op": "a", "n": 1}, {"op": "b", "n": 2}]

    def test_append_many_single_batch(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append_many([{"n": i} for i in range(5)])
        journal.close()
        records, _ = read_records(path)
        assert [r["n"] for r in records] == list(range(5))

    def test_torn_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"op": "a"})
        journal.close()
        with open(path, "a") as fh:
            fh.write('{"op": "tor')  # a crash mid-write
        records, torn = read_records(path)
        assert records == [{"op": "a"}]
        assert torn == 1

    def test_garbage_line_in_middle_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"op": "a"}\nnot json at all\n{"op": "b"}\n')
        records, torn = read_records(path)
        assert [r["op"] for r in records] == ["a", "b"]
        assert torn == 1

    def test_missing_file_reads_empty(self, tmp_path):
        records, torn = read_records(tmp_path / "nope.jsonl")
        assert records == [] and torn == 0

    def test_unlink_removes(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"op": "a"})
        journal.unlink()
        assert not path.exists()
        journal.unlink()  # idempotent

    def test_fsync_dir_tolerates_missing_dir(self, tmp_path):
        fsync_dir(tmp_path / "does-not-exist")  # must not raise


def _stress_writer(path, writer_id, count, payload_size):
    journal = Journal(path)
    pad = "x" * payload_size
    for n in range(count):
        journal.append({"writer": writer_id, "n": n, "pad": pad})
    journal.close()


def _endless_writer(path, payload_size):
    journal = Journal(path)
    pad = "y" * payload_size
    n = 0
    while True:  # killed by the parent mid-stream
        journal.append({"writer": "victim", "n": n, "pad": pad})
        n += 1


class TestConcurrentAppenders:
    """Two writers on one WAL must never interleave partial lines.

    The journal appends each record as a single ``os.write`` on an
    ``O_APPEND`` descriptor, which POSIX makes atomic between
    processes — these tests drive that contract with real concurrent
    processes and records large enough (~16 KiB) that a buffered text
    handle *would* have split them across syscalls.
    """

    PAYLOAD = 16 * 1024

    def test_multiprocess_stress_no_interleaving(self, tmp_path):
        path = tmp_path / "shared.journal"
        n_writers, per_writer = 4, 25
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(
                target=_stress_writer, args=(path, w, per_writer, self.PAYLOAD)
            )
            for w in range(n_writers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        # Every raw line must parse — a single torn line would mean two
        # writers' bytes interleaved inside one record.
        lines = path.read_text().splitlines()
        assert len(lines) == n_writers * per_writer
        seen: dict[int, set[int]] = {}
        for line in lines:
            record = json.loads(line)  # raises on interleaved bytes
            assert len(record["pad"]) == self.PAYLOAD
            seen.setdefault(record["writer"], set()).add(record["n"])
        assert seen == {w: set(range(per_writer)) for w in range(n_writers)}
        records, torn = read_records(path)
        assert torn == 0 and len(records) == len(lines)

    def test_writer_killed_mid_stream_leaves_whole_lines(self, tmp_path):
        path = tmp_path / "victim.journal"
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(target=_endless_writer, args=(path, self.PAYLOAD))
        proc.start()
        try:
            # Let it write a few records, then kill it mid-stream.
            import time

            deadline = time.time() + 60
            while time.time() < deadline:
                if path.exists() and path.stat().st_size > 4 * self.PAYLOAD:
                    break
                time.sleep(0.01)
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.join(timeout=60)
        records, torn = read_records(path)
        assert torn == 0, "SIGKILL tore a journal line"
        assert len(records) >= 3
        assert [r["n"] for r in records] == list(range(len(records)))

    def test_torn_tail_recovered_and_counted(self, tmp_path):
        # A power cut mid-write (not reproducible with SIGKILL, since
        # whole-line appends are atomic) leaves a partial final line:
        # simulate one and prove the reader degrades, not raises.
        path = tmp_path / "torn.journal"
        journal = Journal(path)
        journal.append({"op": "a", "n": 0})
        journal.append({"op": "b", "n": 1})
        journal.close()
        with open(path, "ab") as fh:
            fh.write(b'{"op":"c","n":2,"pad":"trunca')  # no newline, torn
        records, torn = read_records(path)
        assert [r["op"] for r in records] == ["a", "b"]
        assert torn == 1
