"""The fsync'd JSONL journal: durable appends, tolerant reads."""

from repro.orchestrator.journal import Journal, fsync_dir, read_records


class TestJournal:
    def test_append_read_roundtrip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"op": "a", "n": 1})
        journal.append({"op": "b", "n": 2})
        journal.close()
        records, torn = read_records(path)
        assert torn == 0
        assert records == [{"op": "a", "n": 1}, {"op": "b", "n": 2}]

    def test_append_many_single_batch(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append_many([{"n": i} for i in range(5)])
        journal.close()
        records, _ = read_records(path)
        assert [r["n"] for r in records] == list(range(5))

    def test_torn_trailing_line_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"op": "a"})
        journal.close()
        with open(path, "a") as fh:
            fh.write('{"op": "tor')  # a crash mid-write
        records, torn = read_records(path)
        assert records == [{"op": "a"}]
        assert torn == 1

    def test_garbage_line_in_middle_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"op": "a"}\nnot json at all\n{"op": "b"}\n')
        records, torn = read_records(path)
        assert [r["op"] for r in records] == ["a", "b"]
        assert torn == 1

    def test_missing_file_reads_empty(self, tmp_path):
        records, torn = read_records(tmp_path / "nope.jsonl")
        assert records == [] and torn == 0

    def test_unlink_removes(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path)
        journal.append({"op": "a"})
        journal.unlink()
        assert not path.exists()
        journal.unlink()  # idempotent

    def test_fsync_dir_tolerates_missing_dir(self, tmp_path):
        fsync_dir(tmp_path / "does-not-exist")  # must not raise
