"""The chaos harness itself: injections report survival, bad input rejected."""

import pytest

from repro.errors import ChaosError
from repro.orchestrator.chaos import INJECTIONS, run_chaos


class TestRunChaos:
    def test_unknown_injection_rejected(self):
        with pytest.raises(ChaosError, match="unknown injection"):
            run_chaos(only=["meteor-strike"])

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ChaosError, match="workers"):
            run_chaos(workers=0)

    def test_checkpoint_truncate_survives(self):
        # The cheapest injection end-to-end: a full campaign, a torn
        # checkpoint, a resume, a byte-compare.  The remaining
        # injections run in CI via `repro chaos`.
        report = run_chaos(workers=2, only=["checkpoint-truncate"])
        assert report.ok
        assert "1/1 injections survived" in report.render()

    def test_injection_names_are_stable(self):
        # CI and docs reference these literals.
        assert INJECTIONS == (
            "worker-kill",
            "worker-hang",
            "process-kill",
            "checkpoint-truncate",
            "cache-truncate",
            "cache-deny",
            "server-kill",
            "conn-reset",
            "half-frame",
            "slow-client",
        )
