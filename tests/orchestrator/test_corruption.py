"""Corrupted on-disk artifacts must degrade, never crash or poison results.

Every scenario runs at worker counts 1 and 4: the single-worker serial
path and the supervised parallel path share the same byte-identical
contract under corruption.
"""

import pytest

from repro.methodology.parallel import ParallelProtocolRunner
from repro.methodology.records import RecordStore
from repro.methodology.runner import ProtocolRunner

from tests.methodology.test_parallel import (
    DeterministicExecutor,
    store_bytes,
    two_spec_plan,
)


def make_runner(workers, **kwargs):
    if workers == 1:
        return ProtocolRunner(DeterministicExecutor(), **kwargs)
    return ParallelProtocolRunner(DeterministicExecutor(), n_workers=workers, **kwargs)


@pytest.mark.parametrize("workers", [1, 4])
class TestCorruptedCheckpoint:
    def test_truncated_checkpoint_resumes_fresh_and_byte_identical(
        self, tmp_path, workers
    ):
        plan = two_spec_plan()
        expected = store_bytes(
            ProtocolRunner(DeterministicExecutor()).run(plan), tmp_path, "clean"
        )
        path = tmp_path / "ckpt.json"
        make_runner(workers, checkpoint_path=path).run(plan)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        runner = make_runner(workers, checkpoint_path=path)
        store = runner.resume(plan)
        assert len(store) == plan.num_runs
        assert store_bytes(store, tmp_path, f"w{workers}") == expected

    def test_garbage_checkpoint_resumes_fresh(self, tmp_path, workers):
        plan = two_spec_plan()
        path = tmp_path / "ckpt.json"
        path.write_text("this is not json {{{")
        store = make_runner(workers, checkpoint_path=path).resume(plan)
        assert len(store) == plan.num_runs


@pytest.mark.parametrize("workers", [1, 4])
class TestCorruptedJournal:
    def test_torn_journal_does_not_block_campaign(self, tmp_path, workers):
        plan = two_spec_plan()
        expected = store_bytes(
            ProtocolRunner(DeterministicExecutor()).run(plan), tmp_path, "clean"
        )
        path = tmp_path / "ckpt.json"
        journal = tmp_path / "ckpt.json.journal"
        journal.write_text('{"op": "lease", "key": "bo\ngarbage line\n')
        store = make_runner(workers, checkpoint_path=path).run(plan)
        assert store_bytes(store, tmp_path, f"w{workers}") == expected
        assert not journal.exists()  # removed on clean completion

    def test_resume_with_dead_owner_journal(self, tmp_path, workers):
        # A journal from a crashed campaign (dead pid holds a lease)
        # must be reclaimed, and resume must still complete the plan.
        plan = two_spec_plan()
        path = tmp_path / "ckpt.json"
        with pytest.raises(Exception):
            ProtocolRunner(
                DeterministicExecutor(fail_reps={4}),
                checkpoint_path=path,
                checkpoint_every=1,
            ).run(plan)
        journal = tmp_path / "ckpt.json.journal"
        assert journal.exists()
        # Rewrite one entry as a lease held by a provably dead pid.
        journal.write_text(
            '{"op": "lease", "key": "e[s](x=0)", "rep": 0, "state": "leased",'
            ' "attempt": 0, "owner": "pid:1073741824", "lease_expires": null}\n'
        )
        runner = make_runner(workers, checkpoint_path=path)
        store = runner.resume(plan)
        assert runner.supervision_stats["reclaimed"] == 1
        assert len(store) == plan.num_runs
