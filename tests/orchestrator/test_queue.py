"""The durable job queue: crash-safe transitions, lease reclaim."""

import os
import socket

import pytest

from repro.errors import OrchestratorError
from repro.orchestrator.queue import (
    DurableJobQueue,
    default_owner,
    process_start_ticks,
)

# A pid far above any default pid_max: provably not a live process.
_DEAD_PID = 2**30


def reopened(path, **kwargs):
    return DurableJobQueue(path, **kwargs).open()


class TestTransitions:
    def test_states_survive_reopen(self, tmp_path):
        path = tmp_path / "q.journal"
        queue = reopened(path)
        queue.enqueue("a", 0)
        queue.enqueue("a", 1)
        queue.lease("a", 0)
        queue.mark_done("a", 0)
        queue.close()
        fresh = reopened(path)
        assert fresh.entries[("a", 0)].state == "done"
        assert fresh.entries[("a", 1)].state == "queued"
        assert fresh.counts() == {"queued": 1, "leased": 0, "done": 1, "failed": 0}

    def test_enqueue_many_batches(self, tmp_path):
        queue = reopened(tmp_path / "q.journal")
        assert queue.enqueue_many([("a", 0), ("a", 1), ("b", 0)]) == 3
        assert queue.enqueue_many([("a", 0)]) == 0  # already pending
        assert len(queue.pending()) == 3

    def test_lease_many_single_append_and_auto_enqueue(self, tmp_path):
        path = tmp_path / "q.journal"
        queue = reopened(path)
        queue.enqueue("a", 0)
        entries = queue.lease_many([("a", 0), ("a", 1), ("b", 0)])
        assert [e.job_id for e in entries] == [("a", 0), ("a", 1), ("b", 0)]
        assert all(e.state == "leased" for e in entries)
        queue.close()
        # Unknown jobs are journaled as enqueue+lease in the same batch:
        # a reopen (same live owner, lease kept) sees all three leased.
        fresh = reopened(path)
        assert fresh.counts()["leased"] == 3

    def test_lease_many_of_finished_job_rejected(self, tmp_path):
        queue = reopened(tmp_path / "q.journal")
        queue.enqueue("a", 0)
        queue.mark_done("a", 0)
        with pytest.raises(OrchestratorError, match="done"):
            queue.lease_many([("b", 0), ("a", 0)])

    def test_requeue_increments_attempt(self, tmp_path):
        queue = reopened(tmp_path / "q.journal")
        queue.enqueue("a", 0)
        queue.lease("a", 0)
        entry = queue.requeue("a", 0)
        assert entry.state == "queued" and entry.attempt == 1
        assert queue.requeue("a", 0, attempt=7).attempt == 7

    def test_lease_of_finished_job_rejected(self, tmp_path):
        queue = reopened(tmp_path / "q.journal")
        queue.enqueue("a", 0)
        queue.mark_failed("a", 0)
        with pytest.raises(OrchestratorError, match="failed"):
            queue.lease("a", 0)

    def test_enqueue_reopens_finished_jobs(self, tmp_path):
        # The runner only re-enqueues work that is *not* in the record
        # store — the store, not the journal, is authoritative.  A job a
        # previous attempt marked done/failed must be retryable.
        path = tmp_path / "q.journal"
        queue = reopened(path)
        queue.enqueue("a", 0)
        queue.mark_failed("a", 0)
        queue.close()
        fresh = reopened(path)
        fresh.enqueue("a", 0)
        assert fresh.entries[("a", 0)].state == "queued"
        fresh.lease("a", 0)  # leasable again

    def test_use_before_open_rejected(self, tmp_path):
        with pytest.raises(OrchestratorError, match="open"):
            DurableJobQueue(tmp_path / "q.journal").enqueue("a", 0)

    def test_close_remove_deletes_journal(self, tmp_path):
        path = tmp_path / "q.journal"
        queue = reopened(path)
        queue.enqueue("a", 0)
        assert path.exists()
        queue.close(remove=True)
        assert not path.exists()


class TestLeaseReclaim:
    def test_dead_owner_lease_reclaimed(self, tmp_path):
        path = tmp_path / "q.journal"
        crashed = reopened(path, owner=f"pid:{_DEAD_PID}")
        crashed.enqueue("a", 0)
        crashed.lease("a", 0)
        crashed.close()  # the "crash": lease never released
        fresh = reopened(path)
        assert [e.job_id for e in fresh.reclaimed] == [("a", 0)]
        entry = fresh.entries[("a", 0)]
        assert entry.state == "queued" and entry.owner is None

    def test_expired_lease_reclaimed(self, tmp_path):
        path = tmp_path / "q.journal"
        queue = DurableJobQueue(path, owner="runner:elsewhere", lease_s=10.0)
        queue.open(now=1000.0)
        queue.enqueue("a", 0)
        queue.lease("a", 0, now=1000.0)
        queue.close()
        fresh = DurableJobQueue(path)
        fresh.open(now=2000.0)
        assert len(fresh.reclaimed) == 1

    def test_live_owner_lease_kept(self, tmp_path):
        path = tmp_path / "q.journal"
        mine = reopened(path)  # owner = this (live) pid
        mine.enqueue("a", 0)
        mine.lease("a", 0)
        mine.close()
        fresh = reopened(path)
        assert fresh.reclaimed == []
        assert fresh.entries[("a", 0)].state == "leased"

    def test_reclaim_survives_another_reopen(self, tmp_path):
        path = tmp_path / "q.journal"
        crashed = reopened(path, owner=f"pid:{_DEAD_PID}")
        crashed.enqueue("a", 0)
        crashed.lease("a", 0)
        crashed.close()
        reopened(path).close()  # reclaim journaled here
        third = reopened(path)
        assert third.reclaimed == []  # nothing left to reclaim
        assert third.entries[("a", 0)].state == "queued"


class TestToleranceAndOwner:
    def test_torn_journal_lines_tolerated(self, tmp_path):
        path = tmp_path / "q.journal"
        queue = reopened(path)
        queue.enqueue("a", 0)
        queue.close()
        with open(path, "a") as fh:
            fh.write('{"op": "lea\n')
            fh.write('{"op": "x", "key": "b", "rep": 0, "state": "bogus"}\n')
        fresh = reopened(path)
        assert fresh.torn_lines == 2
        assert fresh.entries[("a", 0)].state == "queued"

    def test_default_owner_is_this_pid(self):
        token = default_owner()
        assert token.startswith(f"pid:{os.getpid()}@")
        assert socket.gethostname() in token
        assert "#" in token


class TestOwnerIdentity:
    """Tokens carry host + start time so dead-owner detection is exact."""

    def _leased(self, path, owner):
        crashed = reopened(path, owner=owner)
        crashed.enqueue("a", 0)
        crashed.lease("a", 0)
        crashed.close()

    def test_foreign_host_lease_not_reclaimed(self, tmp_path):
        # Host B cannot probe host A's pid table: even a "dead-looking"
        # pid from another host must ride out its lease expiry.
        path = tmp_path / "q.journal"
        self._leased(path, f"pid:{_DEAD_PID}@not-this-host#123")
        fresh = reopened(path)
        assert fresh.reclaimed == []
        assert fresh.entries[("a", 0)].state == "leased"

    def test_foreign_host_lease_still_expires(self, tmp_path):
        path = tmp_path / "q.journal"
        queue = DurableJobQueue(
            path, owner=f"pid:{_DEAD_PID}@not-this-host#123", lease_s=10.0
        )
        queue.open(now=1000.0)
        queue.enqueue("a", 0)
        queue.lease("a", 0, now=1000.0)
        queue.close()
        fresh = DurableJobQueue(path)
        fresh.open(now=5000.0)
        assert len(fresh.reclaimed) == 1

    def test_local_dead_pid_with_host_reclaimed(self, tmp_path):
        path = tmp_path / "q.journal"
        self._leased(path, f"pid:{_DEAD_PID}@{socket.gethostname()}#123")
        fresh = reopened(path)
        assert [e.job_id for e in fresh.reclaimed] == [("a", 0)]

    def test_pid_reuse_detected_via_start_time(self, tmp_path):
        # A *live* local pid (pid 1 — always alive) whose recorded start
        # time differs from the current one is a reuse impostor: the
        # original owner is dead, so the lease is reclaimable.
        current = process_start_ticks(1)
        if current is None:
            pytest.skip("no /proc starttime on this platform")
        path = tmp_path / "q.journal"
        self._leased(path, f"pid:1@{socket.gethostname()}#{current + 7}")
        fresh = reopened(path)
        assert [e.job_id for e in fresh.reclaimed] == [("a", 0)]

    def test_matching_start_time_not_reclaimed(self, tmp_path):
        current = process_start_ticks(1)
        if current is None:
            pytest.skip("no /proc starttime on this platform")
        path = tmp_path / "q.journal"
        self._leased(path, f"pid:1@{socket.gethostname()}#{current}")
        fresh = reopened(path)
        assert fresh.reclaimed == []

    def test_legacy_bare_pid_token_still_reclaims(self, tmp_path):
        # Old journals hold pid:<n> tokens: treated as local, probed.
        path = tmp_path / "q.journal"
        self._leased(path, f"pid:{_DEAD_PID}")
        fresh = reopened(path)
        assert [e.job_id for e in fresh.reclaimed] == [("a", 0)]

    def test_own_start_ticks_readable(self):
        assert process_start_ticks(os.getpid()) is None or (
            process_start_ticks(os.getpid()) > 0
        )
