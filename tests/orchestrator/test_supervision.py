"""Supervision policy (backoff, windows) and the cache circuit breaker."""

from repro.orchestrator.supervise import CircuitBreaker, SupervisionPolicy


class TestBackoff:
    def test_deterministic_for_same_inputs(self):
        policy = SupervisionPolicy()
        a = policy.backoff_s("spec", 3, 2, seed=7)
        b = policy.backoff_s("spec", 3, 2, seed=7)
        assert a == b

    def test_jitter_varies_with_identity(self):
        policy = SupervisionPolicy()
        delays = {
            policy.backoff_s(key, rep, 1, seed=0)
            for key in ("a", "b")
            for rep in (0, 1)
        }
        assert len(delays) == 4  # same attempt, four distinct jitters

    def test_exponential_growth_until_cap(self):
        policy = SupervisionPolicy(backoff_base_s=0.1, backoff_cap_s=0.4)
        delays = [policy.backoff_s("k", 0, attempt, seed=0) for attempt in (1, 2, 3, 9)]
        # Base doubles per attempt (0.1, 0.2, 0.4) then pins at the cap;
        # jitter multiplies by [1.0, 1.5).
        for delay, base in zip(delays, (0.1, 0.2, 0.4, 0.4)):
            assert base <= delay < base * 1.5
        assert delays[3] == delays[2] or abs(delays[3] - delays[2]) < 0.4 * 0.5

    def test_window_scales_with_workers(self):
        assert SupervisionPolicy().window_for(4) == 16
        assert SupervisionPolicy(window=3).window_for(8) == 3

    def test_lease_outlives_timeout(self):
        policy = SupervisionPolicy(run_timeout_s=10.0)
        assert policy.lease_s > policy.run_timeout_s


class TestCircuitBreaker:
    def test_opens_after_threshold_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown_s=60)
        for _ in range(2):
            breaker.record_failure(now=0.0)
        assert breaker.allow(now=1.0)
        breaker.record_failure(now=2.0)
        assert not breaker.allow(now=3.0)

    def test_half_open_probe_after_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=10)
        breaker.record_failure(now=0.0)
        assert not breaker.allow(now=5.0)
        assert breaker.allow(now=11.0)  # half-open: one probe allowed

    def test_success_closes_from_half_open(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=10)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=11.0)
        breaker.record_success()
        assert breaker.allow(now=11.5)
        assert breaker.allow(now=12.0)

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(threshold=3, cooldown_s=10)
        breaker.record_failure(now=0.0)
        breaker.record_failure(now=0.0)
        breaker.record_failure(now=0.0)
        assert breaker.allow(now=11.0)
        breaker.record_failure(now=11.0)  # the probe failed
        assert not breaker.allow(now=12.0)

    def test_half_open_probes_counted(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=10)
        breaker.record_failure(now=0.0)
        assert breaker.half_open_probes == 0
        assert breaker.allow(now=11.0)  # open -> half-open probe
        assert breaker.half_open_probes == 1
        assert breaker.allow(now=11.5)  # still half-open: another probe
        assert breaker.half_open_probes == 2
        breaker.record_success()
        assert breaker.allow(now=12.0)  # closed: not a probe
        assert breaker.half_open_probes == 2

    def test_probe_failure_starts_fresh_window(self):
        # The re-opened window must start at the probe failure, with
        # failure accounting reset — not accumulated probe cycles.
        breaker = CircuitBreaker(threshold=3, cooldown_s=10)
        for _ in range(3):
            breaker.record_failure(now=0.0)
        for cycle in range(5):
            t = 11.0 + cycle * 11.0
            assert breaker.allow(now=t)  # half-open probe
            breaker.record_failure(now=t)  # probe fails
            assert breaker.failures == 3, "failure count accumulated"
            assert breaker.opened_at == t, "cooldown window not fresh"
            assert not breaker.allow(now=t + 9.9)  # full cooldown again

    def test_transitions_drain_once(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=10)
        breaker.record_failure(now=0.0)
        drained = breaker.drain_transitions()
        assert [state for state, _ in drained] == ["open"]
        assert breaker.drain_transitions() == []
