"""Graceful interrupts: drain, checkpoint, resume — serial and parallel."""

import signal

import pytest

from repro.errors import CampaignInterrupted
from repro.methodology.parallel import ParallelProtocolRunner
from repro.methodology.plan import ExperimentPlan, ExperimentSpec
from repro.methodology.runner import ProtocolRunner
from repro.orchestrator import interrupts
from repro.orchestrator.interrupts import (
    EXIT_INTERRUPTED,
    handle_signals,
    pending_signal,
)

from tests.methodology.test_parallel import (
    DeterministicExecutor,
    store_bytes,
    two_spec_plan,
)


class InterruptingExecutor(DeterministicExecutor):
    """Raises SIGINT in-process at a chosen rep, then keeps working."""

    def __init__(self, interrupt_rep):
        super().__init__()
        self.interrupt_rep = interrupt_rep

    def __call__(self, spec, rep):
        if rep == self.interrupt_rep and spec.factors.get("x") == 0:
            signal.raise_signal(signal.SIGINT)
        return super().__call__(spec, rep)


class TestSignalFlag:
    def test_sigint_sets_pending_without_raising(self):
        with handle_signals():
            assert pending_signal() is None
            signal.raise_signal(signal.SIGINT)
            assert pending_signal() == "SIGINT"
        assert pending_signal() is None  # cleared on exit

    def test_sigterm_sets_pending(self):
        with handle_signals():
            signal.raise_signal(signal.SIGTERM)
            assert pending_signal() == "SIGTERM"

    def test_exit_code_is_conventional_sigint_code(self):
        assert EXIT_INTERRUPTED == 130


class TestSerialInterrupt:
    def test_drain_checkpoint_resume_byte_identical(self, tmp_path):
        plan = two_spec_plan()
        clean = ProtocolRunner(DeterministicExecutor()).run(plan)
        expected = store_bytes(clean, tmp_path, "clean")
        path = tmp_path / "ckpt.json"
        runner = ProtocolRunner(InterruptingExecutor(4), checkpoint_path=path)
        with handle_signals():
            with pytest.raises(CampaignInterrupted) as excinfo:
                runner.run(plan)
        assert excinfo.value.signal == "SIGINT"
        assert excinfo.value.checkpoint == str(path)
        assert path.exists()
        from repro.methodology.records import RecordStore

        assert 0 < len(RecordStore.read_json(path)) < plan.num_runs
        resumed = ProtocolRunner(
            DeterministicExecutor(), checkpoint_path=path
        ).resume(plan)
        assert len(resumed) == plan.num_runs
        assert store_bytes(resumed, tmp_path, "resumed") == expected

    def test_interrupt_without_checkpoint_still_raises(self):
        plan = two_spec_plan()
        with handle_signals():
            with pytest.raises(CampaignInterrupted) as excinfo:
                ProtocolRunner(InterruptingExecutor(2)).run(plan)
        assert excinfo.value.checkpoint is None


class TestParallelInterrupt:
    def test_pre_raised_signal_drains_immediately_then_resumes(self, tmp_path):
        plan = two_spec_plan()
        clean = ProtocolRunner(DeterministicExecutor()).run(plan)
        expected = store_bytes(clean, tmp_path, "clean")
        path = tmp_path / "ckpt.json"
        with handle_signals():
            signal.raise_signal(signal.SIGTERM)
            with pytest.raises(CampaignInterrupted) as excinfo:
                ParallelProtocolRunner(
                    DeterministicExecutor(), n_workers=2, checkpoint_path=path
                ).run(plan)
        assert excinfo.value.signal == "SIGTERM"
        interrupts.clear()
        resumed = ParallelProtocolRunner(
            DeterministicExecutor(), n_workers=2, checkpoint_path=path
        ).resume(plan)
        assert len(resumed) == plan.num_runs
        assert store_bytes(resumed, tmp_path, "resumed") == expected
