"""Blocking-request latency model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.netsim.latency import BlockingRequestModel, NoLatency
from repro.units import KiB, MiB


class TestPerProcess:
    def test_zero_latency_is_transparent(self):
        model = BlockingRequestModel(MiB, 0.0)
        assert model.per_process_rate(100.0) == pytest.approx(100.0)

    def test_known_value(self):
        # 1 MiB transfers, 1 ms overhead, 100 MiB/s share:
        # achieved = 1 / (1/100 + 0.001) MiB/s = 90.909...
        model = BlockingRequestModel(MiB, 1e-3)
        assert model.per_process_rate(100.0) == pytest.approx(90.909, rel=1e-3)

    def test_small_requests_collapse(self):
        fast = BlockingRequestModel(MiB, 1e-3).per_process_rate(500.0)
        slow = BlockingRequestModel(64 * KiB, 1e-3).per_process_rate(500.0)
        assert slow < fast / 3

    def test_zero_rate(self):
        assert BlockingRequestModel(MiB, 1e-3).per_process_rate(0.0) == 0.0

    @given(st.floats(1.0, 5000.0), st.floats(0.0, 0.01))
    @settings(max_examples=60, deadline=None)
    def test_achieved_below_offered(self, rate, latency):
        model = BlockingRequestModel(MiB, latency)
        achieved = model.per_process_rate(rate)
        assert 0 < achieved <= rate + 1e-9

    @given(st.floats(1.0, 5000.0))
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_rate(self, rate):
        model = BlockingRequestModel(MiB, 5e-4)
        assert model.per_process_rate(rate * 2) >= model.per_process_rate(rate)

    def test_efficiency(self):
        model = BlockingRequestModel(MiB, 1e-3)
        assert model.efficiency(0.0) == 1.0
        assert 0 < model.efficiency(1000.0) < 1.0


class TestFlowCaps:
    def test_vectorised_matches_scalar(self):
        model = BlockingRequestModel(MiB, 1e-3)
        rates = np.array([100.0, 200.0])
        procs = np.array([1.0, 2.0])
        caps = model.flow_caps(rates, procs)
        assert caps[0] == pytest.approx(model.per_process_rate(100.0))
        assert caps[1] == pytest.approx(2 * model.per_process_rate(100.0))

    def test_zero_rate_uncapped(self):
        model = BlockingRequestModel(MiB, 1e-3)
        caps = model.flow_caps(np.array([0.0]), np.array([1.0]))
        assert caps[0] == np.inf

    def test_per_flow_request_sizes(self):
        model = BlockingRequestModel(MiB, 1e-3)
        rates = np.array([100.0, 100.0])
        procs = np.array([1.0, 1.0])
        caps = model.flow_caps(rates, procs, np.array([float(MiB), float(64 * KiB)]))
        assert caps[1] < caps[0]

    def test_nan_sizes_fall_back(self):
        model = BlockingRequestModel(MiB, 1e-3)
        caps = model.flow_caps(
            np.array([100.0]), np.array([1.0]), np.array([np.nan])
        )
        assert caps[0] == pytest.approx(model.per_process_rate(100.0))

    def test_shape_mismatch(self):
        model = BlockingRequestModel(MiB, 1e-3)
        with pytest.raises(ConfigError):
            model.flow_caps(np.array([1.0, 2.0]), np.array([1.0]))

    def test_validation(self):
        with pytest.raises(ConfigError):
            BlockingRequestModel(0, 1e-3)
        with pytest.raises(ConfigError):
            BlockingRequestModel(MiB, -1.0)


class TestNoLatency:
    def test_never_caps(self):
        model = NoLatency()
        assert model.per_process_rate(123.0) == 123.0
        assert model.efficiency(1e9) == 1.0
        caps = model.flow_caps(np.array([1.0, 2.0]), np.array([1.0, 1.0]))
        assert np.all(np.isinf(caps))
