"""The fluid simulation engine."""

import math

import numpy as np
import pytest

from repro.errors import FlowError, SimulationError
from repro.netsim.flows import FluidFlow
from repro.netsim.fluid import (
    ConstantCapacity,
    FluidSimulation,
    NoNoise,
    ResourceContext,
)
from repro.netsim.latency import BlockingRequestModel
from repro.units import GiB, MiB


def flow(fid, resources, volume, **kw):
    return FluidFlow(flow_id=fid, resources=tuple(resources), volume_bytes=float(volume), **kw)


class TestBasics:
    def test_single_flow_timing(self):
        sim = FluidSimulation()
        sim.add_resource("link", 1024.0)  # MiB/s
        sim.add_flow(flow("f", ["link"], GiB))
        result = sim.run()
        assert result.makespan == pytest.approx(1.0)
        assert result.stats[0].mean_bandwidth_mib_s == pytest.approx(1024.0)

    def test_fair_share_two_flows(self):
        sim = FluidSimulation()
        sim.add_resource("link", 1000.0)
        sim.add_flow(flow("a", ["link"], GiB))
        sim.add_flow(flow("b", ["link"], GiB))
        result = sim.run()
        # Equal shares: both finish together at 2 * (1024/1000) s.
        assert result.makespan == pytest.approx(2.048)
        assert result.stats[0].finished_at == pytest.approx(result.stats[1].finished_at)

    def test_unbalanced_completion_phases(self):
        """The (1,3) allocation arithmetic of the paper (Section IV-C1)."""
        sim = FluidSimulation()
        sim.add_resource("linkA", 1100.0)
        sim.add_resource("linkB", 1100.0)
        sim.add_flow(flow("a", ["linkA"], 8 * GiB))
        sim.add_flow(flow("b", ["linkB"], 24 * GiB))
        result = sim.run()
        bw = 32 * 1024 / result.makespan
        assert bw == pytest.approx(1100 * 4 / 3, rel=1e-3)

    def test_staggered_arrivals(self):
        sim = FluidSimulation()
        sim.add_resource("link", 1024.0)
        sim.add_flow(flow("early", ["link"], GiB))
        sim.add_flow(flow("late", ["link"], GiB, start_time=10.0))
        result = sim.run()
        early, late = result.stats
        assert early.finished_at == pytest.approx(1.0)
        assert late.started_at == pytest.approx(10.0)
        assert late.finished_at == pytest.approx(11.0)

    def test_overlapping_arrivals_share(self):
        sim = FluidSimulation()
        sim.add_resource("link", 1024.0)
        sim.add_flow(flow("a", ["link"], 2 * GiB))
        sim.add_flow(flow("b", ["link"], GiB, start_time=1.0))
        result = sim.run()
        a, b = result.stats
        # a runs alone for 1s (1 GiB done), then shares; both need 1 GiB
        # at 512 MiB/s -> 2 more seconds.
        assert a.finished_at == pytest.approx(3.0)
        assert b.finished_at == pytest.approx(3.0)

    def test_volume_conservation(self):
        sim = FluidSimulation()
        sim.add_resource("link", 777.0)
        volumes = [GiB, 2 * GiB, GiB // 2]
        for i, v in enumerate(volumes):
            sim.add_flow(flow(f"f{i}", ["link"], v))
        result = sim.run(observe=("link",))
        series = result.resource_series["link"]
        moved = series.integrate(0.0, result.makespan)
        assert moved == pytest.approx(sum(volumes) / MiB, rel=1e-6)


class TestValidation:
    def test_unknown_resource(self):
        sim = FluidSimulation()
        with pytest.raises(FlowError):
            sim.add_flow(flow("f", ["ghost"], GiB))

    def test_duplicate_flow_id(self):
        sim = FluidSimulation()
        sim.add_resource("r", 1.0)
        sim.add_flow(flow("f", ["r"], GiB))
        with pytest.raises(FlowError):
            sim.add_flow(flow("f", ["r"], GiB))

    def test_duplicate_resource(self):
        sim = FluidSimulation()
        sim.add_resource("r", 1.0)
        with pytest.raises(FlowError):
            sim.add_resource("r", 2.0)

    def test_run_without_flows(self):
        with pytest.raises(FlowError):
            FluidSimulation().run()

    def test_observe_unknown_resource(self):
        sim = FluidSimulation()
        sim.add_resource("r", 1.0)
        sim.add_flow(flow("f", ["r"], GiB))
        with pytest.raises(FlowError):
            sim.run(observe=("ghost",))

    def test_stall_detected(self):
        sim = FluidSimulation()
        sim.add_resource("dead", 0.0)
        sim.add_flow(flow("f", ["dead"], GiB))
        with pytest.raises(SimulationError):
            sim.run()


class TestDynamicCapacity:
    def test_depth_dependent_provider(self):
        class Ramp:
            def capacity(self, ctx: ResourceContext) -> float:
                return 100.0 * ctx.depth

        sim = FluidSimulation()
        sim.add_resource("svc", Ramp())
        sim.add_flow(flow("a", ["svc"], GiB, weight=2.0))
        result = sim.run()
        assert result.makespan == pytest.approx(1024 / 200.0)

    def test_distinct_tag_counting(self):
        class PerTarget:
            distinct_tag = "target"

            def capacity(self, ctx: ResourceContext) -> float:
                return 100.0 * ctx.distinct

        sim = FluidSimulation()
        sim.add_resource("pool", PerTarget())
        sim.add_flow(flow("a", ["pool"], GiB, tags={"target": 1}))
        sim.add_flow(flow("b", ["pool"], GiB, tags={"target": 2}))
        result = sim.run()
        # 2 distinct targets -> 200 MiB/s shared -> 2 GiB in ~10.24s
        assert result.makespan == pytest.approx(2048 / 200.0)

    def test_negative_capacity_rejected(self):
        class Bad:
            def capacity(self, ctx: ResourceContext) -> float:
                return -1.0

        sim = FluidSimulation()
        sim.add_resource("bad", Bad())
        sim.add_flow(flow("f", ["bad"], GiB))
        with pytest.raises(SimulationError):
            sim.run()


class TestNoise:
    def test_epoch_noise_changes_completion(self):
        class HalfEveryOtherEpoch:
            epoch_length_s = 1.0

            def multiplier(self, rid, epoch, rng):
                return 0.5 if epoch % 2 else 1.0

        sim = FluidSimulation(noise=HalfEveryOtherEpoch())
        sim.add_resource("link", 1024.0)
        sim.add_flow(flow("f", ["link"], int(1.5 * GiB)))
        result = sim.run(rng=np.random.default_rng(0))
        # 1 GiB in the first (full-speed) second, 0.5 GiB at 512 MiB/s.
        assert result.makespan == pytest.approx(2.0)

    def test_nonoise_has_no_epochs(self):
        assert math.isinf(NoNoise().epoch_length_s)
        assert NoNoise().multiplier("x", 0, np.random.default_rng(0)) == 1.0


class TestLatencyIntegration:
    def test_latency_slows_flow(self):
        base = FluidSimulation()
        base.add_resource("link", 1024.0)
        base.add_flow(flow("f", ["link"], GiB, nprocs=1.0))
        fast = base.run().makespan

        lat = FluidSimulation(latency=BlockingRequestModel(MiB, 1e-3))
        lat.add_resource("link", 1024.0)
        lat.add_flow(flow("f", ["link"], GiB, nprocs=1.0))
        slow = lat.run().makespan
        assert slow > fast * 1.5  # 1024 MiB/s share -> ~half efficiency


class TestResultQueries:
    def test_stats_by_tag_and_span(self):
        sim = FluidSimulation()
        sim.add_resource("r", 1024.0)
        sim.add_flow(flow("a1", ["r"], GiB, tags={"app": "a"}))
        sim.add_flow(flow("b1", ["r"], GiB, tags={"app": "b"}))
        result = sim.run()
        a_stats = result.stats_by_tag("app", "a")
        assert [s.flow_id for s in a_stats] == ["a1"]
        start, end = result.span(a_stats)
        assert start == 0.0 and end == result.makespan
        assert result.total_volume(a_stats) == pytest.approx(GiB)

    def test_constant_capacity_validation(self):
        with pytest.raises(FlowError):
            ConstantCapacity(-1.0)


class TestConservationProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        volumes=st.lists(st.integers(MiB, 4 * GiB), min_size=1, max_size=10),
        capacity=st.floats(100.0, 5000.0),
        starts=st.lists(st.floats(0.0, 5.0), min_size=10, max_size=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_flow_completes_with_exact_volume(self, volumes, capacity, starts):
        sim = FluidSimulation()
        sim.add_resource("link", capacity)
        for i, volume in enumerate(volumes):
            sim.add_flow(flow(f"f{i}", ["link"], volume, start_time=starts[i]))
        result = sim.run(observe=("link",))
        # Total bytes conserved through the observed throughput series,
        # including across idle gaps between arrivals.
        moved = result.resource_series["link"].integrate(0.0, result.makespan) * MiB
        assert moved == pytest.approx(sum(volumes), rel=1e-6)
        for s in result.stats:
            assert s.finished_at > s.started_at
        assert result.makespan >= max(starts[: len(volumes)])

    @given(
        nflows=st.integers(2, 8),
        capacity=st.floats(500.0, 3000.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_equal_flows_finish_together(self, nflows, capacity):
        sim = FluidSimulation()
        sim.add_resource("link", capacity)
        for i in range(nflows):
            sim.add_flow(flow(f"f{i}", ["link"], GiB))
        result = sim.run()
        finishes = {round(s.finished_at, 9) for s in result.stats}
        assert len(finishes) == 1
