"""Fluid flow objects."""

import math

import pytest

from repro.errors import FlowError
from repro.netsim.flows import FluidFlow
from repro.units import GiB, MiB


def make_flow(**kwargs):
    defaults = dict(flow_id="f", resources=("r1", "r2"), volume_bytes=float(GiB))
    defaults.update(kwargs)
    return FluidFlow(**defaults)


class TestValidation:
    def test_valid_flow(self):
        flow = make_flow(weight=2.0, nprocs=2.0, tags={"app": "a"})
        assert flow.remaining_bytes == GiB
        assert not flow.done

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"flow_id": ""},
            {"resources": ()},
            {"resources": ("r", "r")},
            {"volume_bytes": 0},
            {"volume_bytes": -1},
            {"weight": 0},
            {"nprocs": -1},
            {"start_time": -0.1},
            {"request_size_bytes": 0},
        ],
    )
    def test_rejects(self, kwargs):
        with pytest.raises(FlowError):
            make_flow(**kwargs)


class TestLifecycle:
    def test_duration_requires_completion(self):
        flow = make_flow()
        with pytest.raises(FlowError):
            _ = flow.duration
        flow.started_at = 1.0
        flow.finished_at = 3.0
        assert flow.duration == 2.0
        assert flow.done

    def test_stats(self):
        flow = make_flow(volume_bytes=float(2 * GiB), tags={"app": "x"})
        flow.started_at = 0.0
        flow.finished_at = 2.0
        stats = flow.stats()
        assert stats.duration == 2.0
        assert stats.mean_bandwidth_mib_s == pytest.approx(1024.0)
        assert stats.tags["app"] == "x"

    def test_stats_of_unfinished_flow_is_nan(self):
        stats = make_flow().stats()
        assert math.isnan(stats.started_at)
