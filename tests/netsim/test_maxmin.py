"""Max-min fairness: exactness on known cases plus invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FlowError
from repro.netsim.maxmin import (
    MaxMinSolver,
    fairness_violations,
    max_min_rates,
    solve_with_caps,
)


class TestKnownAllocations:
    def test_single_resource_equal_split(self):
        rates = max_min_rates([[0], [0], [0]], [90.0])
        assert rates.tolist() == [30.0, 30.0, 30.0]

    def test_classic_three_flow_example(self):
        # Two links of 10; flow A crosses both, B only link0, C only link1.
        rates = max_min_rates([[0, 1], [0], [1]], [10.0, 10.0])
        assert rates.tolist() == [5.0, 5.0, 5.0]

    def test_bottleneck_freeing(self):
        # link0 tight (10), link1 loose (100): the shared flow is stuck
        # at 5, the private flow on link1 gets the rest.
        rates = max_min_rates([[0, 1], [0], [1]], [10.0, 100.0])
        assert rates[0] == pytest.approx(5.0)
        assert rates[1] == pytest.approx(5.0)
        assert rates[2] == pytest.approx(95.0)

    def test_unbalanced_server_links(self):
        # The paper's (1,3) story: 4 flows, one to server A, three to
        # server B, both server links 1100.
        rates = max_min_rates([[0], [1], [1], [1]], [1100.0, 1100.0])
        assert rates[0] == pytest.approx(1100.0)
        assert rates[1:].sum() == pytest.approx(1100.0)

    def test_zero_capacity_resource(self):
        rates = max_min_rates([[0], [1]], [0.0, 10.0])
        assert rates.tolist() == [0.0, 10.0]

    def test_flow_caps_respected(self):
        rates = max_min_rates([[0], [0]], [100.0], flow_caps=[10.0, np.inf])
        assert rates[0] == pytest.approx(10.0)
        assert rates[1] == pytest.approx(90.0)

    def test_no_flows(self):
        assert max_min_rates([], [10.0]).size == 0

    def test_unbounded_rejected(self):
        with pytest.raises(FlowError):
            max_min_rates([[0]], [np.inf])

    def test_flow_without_resources_rejected(self):
        with pytest.raises(FlowError):
            max_min_rates([[]], [10.0])

    def test_bad_resource_index(self):
        with pytest.raises(FlowError):
            max_min_rates([[5]], [10.0])

    def test_negative_capacity_rejected(self):
        with pytest.raises(FlowError):
            max_min_rates([[0]], [-1.0])


@st.composite
def maxmin_problem(draw):
    nres = draw(st.integers(1, 6))
    nflows = draw(st.integers(1, 12))
    caps = draw(
        st.lists(st.floats(0.5, 1000.0), min_size=nres, max_size=nres)
    )
    memberships = [
        draw(st.sets(st.integers(0, nres - 1), min_size=1, max_size=nres))
        for _ in range(nflows)
    ]
    return [sorted(m) for m in memberships], np.array(caps)


class TestInvariants:
    @given(maxmin_problem())
    @settings(max_examples=80, deadline=None)
    def test_feasibility_and_saturation(self, problem):
        memberships, caps = problem
        rates = max_min_rates(memberships, caps)
        # Feasibility: no resource over capacity.
        usage = np.zeros(len(caps))
        for m, r in zip(memberships, rates):
            for i in m:
                usage[i] += r
        assert np.all(usage <= caps * (1 + 1e-6) + 1e-6)
        # Max-min property: every flow crosses at least one saturated
        # resource (otherwise it could be raised).
        for m, r in zip(memberships, rates):
            assert any(usage[i] >= caps[i] - 1e-5 for i in m), (m, r, usage, caps)

    @given(maxmin_problem())
    @settings(max_examples=50, deadline=None)
    def test_symmetry(self, problem):
        """Flows with identical memberships get identical rates."""
        memberships, caps = problem
        rates = max_min_rates(memberships, caps)
        seen = {}
        for m, r in zip(memberships, rates):
            key = tuple(m)
            if key in seen:
                assert r == pytest.approx(seen[key], rel=1e-6, abs=1e-6)
            seen[key] = r

    @given(maxmin_problem())
    @settings(max_examples=50, deadline=None)
    def test_scaling_invariance(self, problem):
        """Doubling all capacities doubles all rates."""
        memberships, caps = problem
        r1 = max_min_rates(memberships, caps)
        r2 = max_min_rates(memberships, caps * 2.0)
        assert np.allclose(r2, 2.0 * r1, rtol=1e-6, atol=1e-6)

    @given(maxmin_problem())
    @settings(max_examples=80, deadline=None)
    def test_conservation(self, problem):
        """Per-resource conservation: usage is exactly the summed member rates,
        and total delivered rate never exceeds what any cut of saturated
        resources admits."""
        memberships, caps = problem
        rates = max_min_rates(memberships, caps)
        assert np.all(rates >= 0.0)
        usage = np.zeros(len(caps))
        for m, r in zip(memberships, rates):
            for i in m:
                usage[i] += r
        # Every flow's rate is counted once per resource it crosses —
        # re-deriving usage from scratch must agree bit-for-bit.
        usage2 = np.zeros(len(caps))
        for m, r in zip(memberships, rates):
            usage2[list(m)] += r
        assert np.allclose(usage, usage2, rtol=0, atol=1e-9)
        assert np.all(usage <= caps * (1 + 1e-6) + 1e-6)

    @given(maxmin_problem())
    @settings(max_examples=80, deadline=None)
    def test_fairness_certificate(self, problem):
        """The machine-checkable certificate the runtime checker uses:
        no flow can be raised without breaking a constraint."""
        memberships, caps = problem
        rates = max_min_rates(memberships, caps)
        assert fairness_violations(memberships, caps, rates) == []

    @given(maxmin_problem(), st.lists(st.floats(0.1, 500.0), min_size=1, max_size=12))
    @settings(max_examples=80, deadline=None)
    def test_fairness_certificate_with_flow_caps(self, problem, raw_caps):
        memberships, caps = problem
        flow_caps = np.array(
            [raw_caps[i % len(raw_caps)] for i in range(len(memberships))]
        )
        rates = max_min_rates(memberships, caps, flow_caps=flow_caps)
        assert np.all(rates <= flow_caps * (1 + 1e-9) + 1e-9)
        assert fairness_violations(memberships, caps, rates, flow_caps) == []

    def test_fairness_certificate_flags_underallocation(self):
        """An allocation that leaves headroom for some flow must be flagged."""
        memberships = [[0], [0]]
        caps = np.array([100.0])
        assert fairness_violations(memberships, caps, np.array([20.0, 20.0])) == [0, 1]
        assert fairness_violations(memberships, caps, np.array([50.0, 50.0])) == []


class TestSolveWithCaps:
    def test_none_cap_fn(self):
        rates = solve_with_caps([[0]], [10.0], None)
        assert rates[0] == 10.0

    def test_shrinking_cap_converges_not_to_zero(self):
        """The blocking-request-style cap must not spiral downward."""

        def cap_fn(rates):
            # achieved(r) = r * 1 / (1 + 0.1 r): strictly below r.
            return rates / (1.0 + 0.1 * rates)

        rates = solve_with_caps([[0], [0]], [100.0], cap_fn, iterations=10)
        # Offered share is 50 each -> achieved cap = 50/6 each; a naive
        # fixpoint on its own output would collapse toward 0.
        assert np.all(rates > 8.0)
        assert np.all(rates <= 50.0 / (1 + 0.1 * 50.0) + 1e-9)

    def test_freed_capacity_redistributes(self):
        def cap_fn(rates):
            # Cap the first flow hard; the second is uncapped.
            return np.array([5.0, np.inf])

        rates = solve_with_caps([[0], [0]], [100.0], cap_fn)
        assert rates[0] == pytest.approx(5.0)
        assert rates[1] == pytest.approx(95.0)

    def test_wrong_shape_rejected(self):
        with pytest.raises(FlowError):
            solve_with_caps([[0]], [10.0], lambda r: np.ones(3))

    def test_non_converging_cap_fn_terminates(self):
        """A cap_fn that keeps raising its answer never reaches the
        fixpoint tolerance; the loop must still stop at ``iterations``
        and return a feasible allocation."""
        calls = {"n": 0}

        def cap_fn(rates):
            calls["n"] += 1
            # Strictly rising caps on every evaluation: no fixpoint.
            return rates + calls["n"]

        rates = solve_with_caps([[0], [0]], [100.0], cap_fn, iterations=3)
        # Seed evaluation + one per iteration, no runaway.
        assert calls["n"] <= 4
        assert rates.sum() <= 100.0 * (1 + 1e-6) + 1e-6
        assert np.all(rates >= 0.0)

    def test_zero_capacity_resource_with_caps(self):
        """A flow pinned to a dead resource stays at zero even when the
        cap_fn offers it headroom, and doesn't poison the live flow."""

        def cap_fn(rates):
            return np.array([50.0, 50.0])

        rates = solve_with_caps([[0], [1]], [0.0, 80.0], cap_fn, iterations=5)
        assert rates[0] == 0.0
        assert rates[1] == pytest.approx(50.0)
        # The certificate accepts the allocation: flow 0 saturates the
        # dead resource, flow 1 its own cap.
        assert fairness_violations([[0], [1]], np.array([0.0, 80.0]), rates, np.array([50.0, 50.0])) == []

    def test_all_flows_on_zero_capacity(self):
        rates = solve_with_caps([[0], [0]], [0.0], lambda r: r + 1.0, iterations=4)
        assert rates.tolist() == [0.0, 0.0]


class TestMaxMinSolver:
    """The persistent solver: incidence reuse, keyed cache, equivalence."""

    def problem(self, seed=0, nflows=24, nres=8):
        rng = np.random.default_rng(seed)
        memberships = [
            sorted(int(r) for r in rng.choice(nres, size=3, replace=False))
            for _ in range(nflows)
        ]
        return memberships, rng.uniform(10.0, 1000.0, nres)

    def test_matches_one_shot_solver(self):
        memberships, caps = self.problem()
        solver = MaxMinSolver(memberships, caps.shape[0])
        for scale in (1.0, 0.5, 2.0):
            np.testing.assert_array_equal(
                solver.solve(caps * scale), max_min_rates(memberships, caps * scale)
            )

    def test_matches_one_shot_with_flow_caps(self):
        memberships, caps = self.problem()
        flow_caps = np.linspace(1.0, 200.0, len(memberships))
        solver = MaxMinSolver(memberships, caps.shape[0])
        np.testing.assert_array_equal(
            solver.solve(caps, flow_caps),
            max_min_rates(memberships, caps, flow_caps),
        )

    def test_cache_hit_returns_same_array(self):
        memberships, caps = self.problem()
        solver = MaxMinSolver(memberships, caps.shape[0])
        first = solver.solve(caps)
        assert solver.solve(caps) is first
        assert solver.cache_len == 1

    def test_flow_caps_key_the_cache(self):
        memberships, caps = self.problem()
        solver = MaxMinSolver(memberships, caps.shape[0])
        uncapped = solver.solve(caps)
        capped = solver.solve(caps, np.full(len(memberships), 5.0))
        assert solver.cache_len == 2
        assert capped is not uncapped
        assert np.all(capped <= 5.0 + 1e-9)

    def test_clear_cache(self):
        memberships, caps = self.problem()
        solver = MaxMinSolver(memberships, caps.shape[0])
        solver.solve(caps)
        solver.clear_cache()
        assert solver.cache_len == 0

    def test_cache_overflow_resets_not_grows(self):
        memberships, caps = self.problem()
        solver = MaxMinSolver(memberships, caps.shape[0], cache_size=4)
        for i in range(10):
            solver.solve(caps * (1.0 + 0.01 * i))
        assert solver.cache_len <= 4

    def test_results_are_read_only(self):
        memberships, caps = self.problem()
        solver = MaxMinSolver(memberships, caps.shape[0])
        rates = solver.solve(caps)
        with pytest.raises(ValueError):
            rates[0] = 0.0
        assert solver.incidence.flags.writeable is False

    def test_wrong_capacity_shape_rejected(self):
        memberships, caps = self.problem()
        solver = MaxMinSolver(memberships, caps.shape[0])
        with pytest.raises(FlowError):
            solver.solve(caps[:-1])

    def test_wrong_flow_caps_shape_rejected(self):
        memberships, caps = self.problem()
        solver = MaxMinSolver(memberships, caps.shape[0])
        with pytest.raises(FlowError):
            solver.solve(caps, np.ones(3))

    def test_construction_validates_memberships(self):
        with pytest.raises(FlowError):
            MaxMinSolver([[0], []], 2)
        with pytest.raises(FlowError):
            MaxMinSolver([[7]], 2)

    @given(maxmin_problem())
    @settings(max_examples=50, deadline=None)
    def test_property_equivalence(self, problem):
        memberships, caps = problem
        solver = MaxMinSolver(memberships, len(caps))
        np.testing.assert_array_equal(
            solver.solve(caps), max_min_rates(memberships, caps)
        )


class TestVectorizedCertificate:
    """Edge semantics of the vectorized fairness_violations."""

    def test_empty_problem(self):
        assert fairness_violations([], np.zeros(0), np.zeros(0)) == []

    def test_wrong_rates_length_rejected(self):
        with pytest.raises(FlowError):
            fairness_violations([[0]], [10.0], [1.0, 2.0])

    def test_wrong_flow_caps_length_rejected(self):
        with pytest.raises(FlowError):
            fairness_violations([[0]], [10.0], [10.0], flow_caps=[1.0, 2.0])

    def test_infinite_flow_caps_do_not_hold_flows(self):
        # inf caps never count as a binding constraint.
        violations = fairness_violations(
            [[0], [0]], [100.0], [20.0, 20.0], flow_caps=[np.inf, np.inf]
        )
        assert violations == [0, 1]

    def test_duplicate_resource_memberships_count_per_occurrence(self):
        # A flow listed twice on one resource contributes its rate twice,
        # matching the scalar accumulation it replaced.
        violations = fairness_violations([[0, 0]], [100.0], [50.0])
        assert violations == []

    def test_zero_capacity_resource_counts_as_saturated(self):
        assert fairness_violations([[0]], [0.0], [0.0]) == []
