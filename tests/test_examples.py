"""The examples are runnable end to end (quickstart smoke test).

The longer domain studies (stripe_count_study, concurrent_applications,
tune_your_own_system, metadata_study) are exercised indirectly — every
API they touch is covered elsewhere — and verified manually; running
them all here would double the suite's wall time.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def test_quickstart_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert "stripe targets:" in result.stdout
    assert "stripe 8" in result.stdout
    assert "recommendation" in result.stdout


def test_all_examples_present_and_importable():
    expected = {
        "quickstart.py",
        "stripe_count_study.py",
        "concurrent_applications.py",
        "tune_your_own_system.py",
        "metadata_study.py",
    }
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert expected <= present
    for name in expected:
        source = (EXAMPLES / name).read_text()
        compile(source, name, "exec")  # syntax-checks without executing
