"""OST service curve."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.netsim.fluid import ResourceContext
from repro.storage.device import plafrim_ost_array
from repro.storage.target import StorageTargetModel, TargetServiceSpec


class TestServiceCurve:
    def test_zero_depth_zero_rate(self):
        spec = TargetServiceSpec(1764.0, depth_constant=10.0)
        assert spec.rate_at_depth(0) == 0.0
        assert spec.rate_at_depth(-1) == 0.0

    def test_saturation(self):
        spec = TargetServiceSpec(1764.0, depth_constant=10.0)
        assert spec.rate_at_depth(1000) == pytest.approx(1764.0, rel=1e-3)

    def test_known_points(self):
        spec = TargetServiceSpec(1000.0, depth_constant=10.0)
        assert spec.rate_at_depth(10) == pytest.approx(1000 * (1 - math.exp(-1)))

    @given(st.floats(0.1, 500.0), st.floats(0.2, 600.0))
    @settings(max_examples=60, deadline=None)
    def test_monotone_and_bounded(self, d1, d2):
        spec = TargetServiceSpec(1764.0, depth_constant=6.0)
        lo, hi = sorted((d1, d2))
        assert spec.rate_at_depth(lo) <= spec.rate_at_depth(hi) + 1e-9
        assert spec.rate_at_depth(hi) <= spec.peak_mib_s

    def test_depth_for_fraction_inverts(self):
        spec = TargetServiceSpec(1764.0, depth_constant=10.0)
        depth = spec.depth_for_fraction(0.95)
        assert spec.rate_at_depth(depth) == pytest.approx(0.95 * 1764.0)

    def test_depth_for_fraction_bounds(self):
        spec = TargetServiceSpec(100.0)
        with pytest.raises(StorageError):
            spec.depth_for_fraction(1.0)

    def test_from_array(self):
        spec = TargetServiceSpec.from_array(plafrim_ost_array())
        assert spec.peak_mib_s == pytest.approx(1764.0)

    def test_validation(self):
        with pytest.raises(StorageError):
            TargetServiceSpec(0.0)
        with pytest.raises(StorageError):
            TargetServiceSpec(100.0, depth_constant=0)


class TestProvider:
    def test_capacity_uses_noise(self):
        model = StorageTargetModel("101", TargetServiceSpec(1000.0, 10.0))
        ctx = ResourceContext(time=0.0, depth=1000.0, nflows=8, noise=0.5)
        assert model.capacity(ctx) == pytest.approx(500.0, rel=1e-2)

    def test_resource_id(self):
        model = StorageTargetModel("101", TargetServiceSpec(1000.0))
        assert model.resource_id == "ost:101"
