"""Noise models."""

import math

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.variability import CompositeNoise, NoiseSpec, StochasticNoise


def rng():
    return np.random.default_rng(7)


class TestNoiseSpec:
    def test_quiet_detection(self):
        assert NoiseSpec(sigma_run=0, sigma_epoch=0, transient_prob=0).quiet
        assert not NoiseSpec().quiet

    def test_validation(self):
        with pytest.raises(StorageError):
            NoiseSpec(sigma_run=-0.1)
        with pytest.raises(StorageError):
            NoiseSpec(epoch_length_s=0)
        with pytest.raises(StorageError):
            NoiseSpec(transient_prob=1.5)
        with pytest.raises(StorageError):
            NoiseSpec(transient_severity=0)


class TestStochasticNoise:
    def test_scope(self):
        noise = StochasticNoise(NoiseSpec(scope_prefixes=("pool:",)))
        assert noise.multiplier("client:bora001", 0, rng()) == 1.0
        assert noise.in_scope("pool:storage1")
        assert not noise.in_scope("ost:101")

    def test_quiet_is_identity(self):
        noise = StochasticNoise(NoiseSpec(sigma_run=0, sigma_epoch=0, transient_prob=0))
        assert math.isinf(noise.epoch_length_s)
        assert noise.multiplier("pool:x", 3, rng()) == 1.0

    def test_run_level_cached_within_instance(self):
        spec = NoiseSpec(sigma_run=0.3, sigma_epoch=0.0, transient_prob=0.0)
        noise = StochasticNoise(spec)
        g = rng()
        a = noise.multiplier("pool:x", 0, g)
        b = noise.multiplier("pool:x", 1, g)
        assert a == pytest.approx(b)  # epoch sigma 0 -> pure run level

    def test_fresh_instance_redraws(self):
        spec = NoiseSpec(sigma_run=0.3, sigma_epoch=0.0, transient_prob=0.0)
        a = StochasticNoise(spec).multiplier("pool:x", 0, np.random.default_rng(1))
        b = StochasticNoise(spec).multiplier("pool:x", 0, np.random.default_rng(2))
        assert a != b

    def test_mean_is_approximately_one(self):
        spec = NoiseSpec(sigma_run=0.1, sigma_epoch=0.1, transient_prob=0.0)
        g = rng()
        draws = [
            StochasticNoise(spec).multiplier("pool:x", 0, g) for _ in range(4000)
        ]
        assert np.mean(draws) == pytest.approx(1.0, abs=0.02)

    def test_transients_cut_capacity(self):
        spec = NoiseSpec(
            sigma_run=0.0, sigma_epoch=0.0, transient_prob=1.0, transient_severity=0.5
        )
        noise = StochasticNoise(spec)
        assert noise.multiplier("pool:x", 0, rng()) == pytest.approx(0.5)

    def test_positive_multipliers(self):
        noise = StochasticNoise(NoiseSpec(sigma_run=0.5, sigma_epoch=0.5, transient_prob=0.2))
        g = rng()
        for epoch in range(200):
            assert noise.multiplier("pool:x", epoch, g) > 0


class TestCompositeNoise:
    def test_multiplies_members(self):
        always_half = StochasticNoise(
            NoiseSpec(sigma_run=0, sigma_epoch=0, transient_prob=1.0, transient_severity=0.5,
                      scope_prefixes=("pool:",))
        )
        quarter = StochasticNoise(
            NoiseSpec(sigma_run=0, sigma_epoch=0, transient_prob=1.0, transient_severity=0.25,
                      scope_prefixes=("pool:",))
        )
        comp = CompositeNoise((always_half, quarter))
        assert comp.multiplier("pool:x", 0, rng()) == pytest.approx(0.125)
        assert comp.multiplier("client:x", 0, rng()) == 1.0

    def test_epoch_length_is_min(self):
        a = StochasticNoise(NoiseSpec(epoch_length_s=4.0))
        quiet = StochasticNoise(NoiseSpec(sigma_run=0, sigma_epoch=0, transient_prob=0))
        comp = CompositeNoise((a, quiet))
        assert comp.epoch_length_s == 4.0

    def test_incompatible_epochs_rejected(self):
        a = StochasticNoise(NoiseSpec(epoch_length_s=4.0))
        b = StochasticNoise(NoiseSpec(epoch_length_s=2.0))
        with pytest.raises(StorageError):
            CompositeNoise((a, b))

    def test_empty_rejected(self):
        with pytest.raises(StorageError):
            CompositeNoise(())
