"""Client service ceiling (Lesson 3's intra-node contention)."""

import pytest

from repro.errors import StorageError
from repro.storage.client_model import ClientServiceSpec


class TestClientCeiling:
    def test_full_capacity_up_to_knee(self):
        spec = ClientServiceSpec(880.0, contention_per_proc=0.003, knee_procs=8)
        assert spec.node_capacity(1) == 880.0
        assert spec.node_capacity(8) == 880.0

    def test_slight_degradation_past_knee(self):
        """16 ppn vs 8 ppn: 'very similar, with a slight degradation'."""
        spec = ClientServiceSpec(880.0, contention_per_proc=0.003, knee_procs=8)
        cap16 = spec.node_capacity(16)
        assert cap16 < 880.0
        assert cap16 > 880.0 * 0.95

    def test_monotone_decreasing(self):
        spec = ClientServiceSpec(1630.0)
        caps = [spec.node_capacity(p) for p in (8, 16, 32, 64)]
        assert caps == sorted(caps, reverse=True)

    def test_zero_contention(self):
        spec = ClientServiceSpec(1000.0, contention_per_proc=0.0)
        assert spec.node_capacity(100) == 1000.0

    def test_validation(self):
        with pytest.raises(StorageError):
            ClientServiceSpec(0.0)
        with pytest.raises(StorageError):
            ClientServiceSpec(100.0, contention_per_proc=-1)
        with pytest.raises(StorageError):
            ClientServiceSpec(100.0).node_capacity(0)

    def test_resource_id(self):
        assert ClientServiceSpec.resource_id("bora001") == "client:bora001"
