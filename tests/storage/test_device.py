"""Device and RAID models."""

import pytest

from repro.errors import StorageError
from repro.storage.device import (
    HDDSpec,
    RAIDArray,
    SAMSUNG_MZILT1T6HAJQ,
    SSDSpec,
    TOSHIBA_AL15SEB18EOY,
    plafrim_mdt_array,
    plafrim_ost_array,
)


class TestSpecs:
    def test_plafrim_drive_facts(self):
        assert TOSHIBA_AL15SEB18EOY.rpm == 10_000
        assert TOSHIBA_AL15SEB18EOY.capacity_bytes == pytest.approx(1.8 * 2**40, rel=1e-6)
        assert SAMSUNG_MZILT1T6HAJQ.capacity_bytes == pytest.approx(1.6 * 2**40, rel=1e-6)

    def test_validation(self):
        with pytest.raises(StorageError):
            HDDSpec("x", 0, 7200, 100.0)
        with pytest.raises(StorageError):
            SSDSpec("x", 100, -1.0)


class TestRAID:
    def test_raid6_data_devices(self):
        array = plafrim_ost_array()
        assert array.level == "raid6"
        assert array.devices == 12
        assert array.data_devices == 10

    def test_raid1_data_devices(self):
        array = plafrim_mdt_array()
        assert array.data_devices == 1

    def test_raid0_and_raid10(self):
        hdd = TOSHIBA_AL15SEB18EOY
        assert RAIDArray("raid0", 4, hdd).data_devices == 4
        assert RAIDArray("raid10", 8, hdd).data_devices == 4

    def test_ost_streaming_rate_matches_calibration(self):
        # 10 data drives x 210 MiB/s x 0.84 controller = 1764 MiB/s,
        # the paper's single-target rate.
        assert plafrim_ost_array().streaming_write_mib_s == pytest.approx(1764.0)

    def test_usable_capacity(self):
        array = plafrim_ost_array()
        assert array.usable_capacity_bytes == 10 * TOSHIBA_AL15SEB18EOY.capacity_bytes

    @pytest.mark.parametrize(
        "level,devices",
        [("raid6", 3), ("raid5", 2), ("raid1", 3), ("raid10", 5)],
    )
    def test_device_count_validation(self, level, devices):
        with pytest.raises(StorageError):
            RAIDArray(level, devices, TOSHIBA_AL15SEB18EOY)

    def test_efficiency_bounds(self):
        with pytest.raises(StorageError):
            RAIDArray("raid6", 12, TOSHIBA_AL15SEB18EOY, controller_efficiency=1.5)
