"""Server ingest and storage pool models."""

import pytest

from repro.errors import StorageError
from repro.netsim.fluid import ResourceContext
from repro.storage.server import (
    ServerIngestModel,
    ServerIngestSpec,
    StorageHostSpec,
    StoragePoolModel,
    StoragePoolSpec,
)
from repro.storage.target import TargetServiceSpec


def ctx(depth=10.0, nflows=4, noise=1.0, distinct=1):
    return ResourceContext(time=0.0, depth=depth, nflows=nflows, noise=noise, distinct=distinct)


class TestIngest:
    def test_effective_link(self):
        spec = ServerIngestSpec(1192.0, protocol_efficiency=0.923)
        assert spec.effective_link_mib_s == pytest.approx(1100.2, rel=1e-3)

    def test_ramp(self):
        spec = ServerIngestSpec(1192.0, 0.923, depth_constant=5.0)
        assert spec.rate_at_depth(0) == 0.0
        assert spec.rate_at_depth(5) < spec.rate_at_depth(50)
        assert spec.rate_at_depth(1000) == pytest.approx(spec.effective_link_mib_s, rel=1e-3)

    def test_model_applies_noise(self):
        model = ServerIngestModel("storage1", ServerIngestSpec(1000.0, 1.0, 5.0))
        assert model.capacity(ctx(depth=1e6, noise=0.9)) == pytest.approx(900.0, rel=1e-3)
        assert model.resource_id == "ingest:storage1"

    def test_validation(self):
        with pytest.raises(StorageError):
            ServerIngestSpec(0.0)
        with pytest.raises(StorageError):
            ServerIngestSpec(100.0, protocol_efficiency=1.5)


class TestPool:
    def test_single_target_rate(self):
        spec = StoragePoolSpec(1764.0, scaling=(1.0, 0.9, 0.8, 0.7))
        assert spec.aggregate_mib_s(1) == pytest.approx(1764.0)

    def test_sublinear_growth(self):
        spec = StoragePoolSpec(1764.0, scaling=(1.0, 0.907, 0.756, 0.670))
        rates = [spec.aggregate_mib_s(m) for m in range(1, 5)]
        assert rates == sorted(rates)  # total grows
        per_target = [r / m for m, r in enumerate(rates, start=1)]
        assert per_target == sorted(per_target, reverse=True)  # efficiency falls

    def test_tail_extension(self):
        spec = StoragePoolSpec(1000.0, scaling=(1.0, 0.9), tail_decay=0.5)
        assert spec.efficiency(3) == pytest.approx(0.45)
        assert spec.efficiency(4) == pytest.approx(0.225)

    def test_zero_targets(self):
        assert StoragePoolSpec().aggregate_mib_s(0) == 0.0
        with pytest.raises(StorageError):
            StoragePoolSpec().efficiency(0)

    def test_model_uses_distinct_count(self):
        spec = StoragePoolSpec(1000.0, scaling=(1.0, 0.9))
        model = StoragePoolModel("storage1", spec)
        assert model.distinct_tag == "target"
        assert model.capacity(ctx(distinct=1)) == pytest.approx(1000.0)
        assert model.capacity(ctx(distinct=2)) == pytest.approx(1800.0)
        assert model.capacity(ctx(nflows=0)) == 0.0
        assert model.resource_id == "pool:storage1"

    def test_validation(self):
        with pytest.raises(StorageError):
            StoragePoolSpec(0.0)
        with pytest.raises(StorageError):
            StoragePoolSpec(100.0, scaling=())
        with pytest.raises(StorageError):
            StoragePoolSpec(100.0, scaling=(1.2,))


class TestHostSpec:
    def make(self, **kwargs):
        defaults = dict(
            host="storage1",
            target_ids=(101, 102, 103, 104),
            target_spec=TargetServiceSpec(2000.0, 10.0),
            ingest_spec=ServerIngestSpec(1192.0),
        )
        defaults.update(kwargs)
        return StorageHostSpec(**defaults)

    def test_spec_for_with_override(self):
        slow = TargetServiceSpec(500.0)
        host = self.make(per_target_specs={103: slow})
        assert host.spec_for(101).peak_mib_s == 2000.0
        assert host.spec_for(103).peak_mib_s == 500.0

    def test_spec_for_unknown_target(self):
        with pytest.raises(StorageError):
            self.make().spec_for(999)

    def test_peak_storage(self):
        host = self.make(pool_spec=StoragePoolSpec(1764.0, scaling=(1.0, 0.907, 0.756, 0.670)))
        assert host.peak_storage_mib_s == pytest.approx(4 * 1764 * 0.670)

    def test_duplicate_targets_rejected(self):
        with pytest.raises(StorageError):
            self.make(target_ids=(101, 101))

    def test_unknown_override_rejected(self):
        with pytest.raises(StorageError):
            self.make(per_target_specs={999: TargetServiceSpec(1.0)})

    def test_pool_resource_id(self):
        assert self.make().pool_resource_id == "pool:storage1"
