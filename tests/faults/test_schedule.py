"""Fault schedules: windows, multipliers, boundaries, management state."""

import math

import pytest

from repro.beegfs.filesystem import BeeGFS, plafrim_deployment
from repro.beegfs.management import TargetState
from repro.errors import FaultError, NoSuchEntityError
from repro.faults import (
    FaultEvent,
    FaultKind,
    FaultSchedule,
    degraded_link,
    degraded_target,
    server_outage,
    target_outage,
)


class TestEventValidation:
    def test_negative_start(self):
        with pytest.raises(FaultError):
            target_outage(101, -1.0, 5.0)

    def test_nonpositive_duration(self):
        with pytest.raises(FaultError):
            target_outage(101, 0.0, 0.0)

    def test_hard_outage_rejects_nonzero_multiplier(self):
        with pytest.raises(FaultError):
            FaultEvent(FaultKind.TARGET_OFFLINE, 0.0, 1.0, target_id=101, multiplier=0.5)

    def test_degraded_needs_fractional_multiplier(self):
        with pytest.raises(FaultError):
            FaultEvent(FaultKind.TARGET_DEGRADED, 0.0, 1.0, target_id=101, multiplier=0.0)
        with pytest.raises(FaultError):
            degraded_target(101, 0.0, 1.0, multiplier=1.5)

    def test_target_events_need_target_id(self):
        with pytest.raises(FaultError):
            FaultEvent(FaultKind.TARGET_OFFLINE, 0.0, 1.0)

    def test_server_event_needs_server(self):
        with pytest.raises(FaultError):
            FaultEvent(FaultKind.SERVER_OFFLINE, 0.0, 1.0)

    def test_link_event_needs_resource_id(self):
        with pytest.raises(FaultError):
            FaultEvent(FaultKind.LINK_DEGRADED, 0.0, 1.0, multiplier=0.5)

    def test_fault_error_is_value_error(self):
        with pytest.raises(ValueError):
            target_outage(101, 0.0, -1.0)


class TestEventSemantics:
    def test_window_is_half_open(self):
        event = target_outage(101, 2.0, 3.0)
        assert not event.active_at(1.999)
        assert event.active_at(2.0)
        assert event.active_at(4.999)
        assert not event.active_at(5.0)

    def test_permanent_outage(self):
        event = target_outage(101, 1.0)
        assert math.isinf(event.end_s)
        assert event.active_at(1e12)
        assert "permanently" in event.describe()

    def test_resource_mapping(self):
        assert target_outage(201, 0.0, 1.0).resources == ("ost:201",)
        assert degraded_target(201, 0.0, 1.0, 0.5).resources == ("ost:201",)
        assert server_outage("storage1", 0.0, 1.0).resources == (
            "ingest:storage1",
            "pool:storage1",
        )
        assert degraded_link("link:n3", 0.0, 1.0, 0.25).resources == ("link:n3",)


class TestSchedule:
    def test_empty(self):
        schedule = FaultSchedule()
        assert schedule.is_empty
        assert len(schedule) == 0
        assert schedule.boundaries() == ()
        assert schedule.multiplier("ost:101", 0.0) == 1.0
        assert not schedule.affects("ost:101")
        assert schedule.describe() == "no faults"

    def test_rejects_non_events(self):
        with pytest.raises(FaultError):
            FaultSchedule(["not an event"])  # type: ignore[list-item]

    def test_multiplier_inside_and_outside_window(self):
        schedule = FaultSchedule([degraded_target(201, 2.0, 3.0, multiplier=0.25)])
        assert schedule.multiplier("ost:201", 1.0) == 1.0
        assert schedule.multiplier("ost:201", 2.0) == 0.25
        assert schedule.multiplier("ost:201", 5.0) == 1.0
        assert schedule.multiplier("ost:999", 2.5) == 1.0

    def test_overlapping_events_multiply(self):
        schedule = FaultSchedule(
            [
                degraded_target(201, 0.0, 10.0, multiplier=0.5),
                degraded_target(201, 5.0, 10.0, multiplier=0.5),
            ]
        )
        assert schedule.multiplier("ost:201", 1.0) == 0.5
        assert schedule.multiplier("ost:201", 7.0) == 0.25

    def test_outage_zeroes_capacity(self):
        schedule = FaultSchedule([target_outage(201, 1.0, 2.0)])
        assert schedule.multiplier("ost:201", 1.5) == 0.0

    def test_boundaries_sorted_and_finite(self):
        schedule = FaultSchedule(
            [
                target_outage(101, 5.0, 5.0),
                target_outage(201, 1.0),  # permanent: inf end excluded
                degraded_link("link:x", 3.0, 4.0, 0.5),
            ]
        )
        assert schedule.boundaries() == (1.0, 3.0, 5.0, 7.0, 10.0)

    def test_events_for(self):
        event = server_outage("storage2", 0.0, 1.0)
        schedule = FaultSchedule([event])
        assert schedule.events_for("ingest:storage2") == (event,)
        assert schedule.events_for("pool:storage2") == (event,)
        assert schedule.events_for("ost:201") == ()


class TestManagementView:
    def fs(self):
        return BeeGFS(plafrim_deployment(keep_data=True), seed=1)

    def test_target_outage_marks_offline(self):
        fs = self.fs()
        schedule = FaultSchedule([target_outage(201, 0.0, 5.0)])
        schedule.apply_to_management(fs.management, time=0.0)
        assert fs.management.target(201).state is TargetState.OFFLINE
        assert not fs.management.target(201).available

    def test_recovery_resets_to_online(self):
        fs = self.fs()
        schedule = FaultSchedule([target_outage(201, 0.0, 5.0)])
        schedule.apply_to_management(fs.management, time=0.0)
        schedule.apply_to_management(fs.management, time=5.0)
        assert fs.management.target(201).state is TargetState.ONLINE

    def test_degraded_target_stays_available(self):
        fs = self.fs()
        schedule = FaultSchedule([degraded_target(104, 0.0, 5.0, multiplier=0.5)])
        schedule.apply_to_management(fs.management, time=1.0)
        info = fs.management.target(104)
        assert info.state is TargetState.DEGRADED
        assert info.available

    def test_server_outage_takes_down_all_its_targets(self):
        fs = self.fs()
        schedule = FaultSchedule([server_outage("storage2", 0.0, 5.0)])
        schedule.apply_to_management(fs.management, time=0.0)
        for tid in (201, 202, 203, 204):
            assert fs.management.target(tid).state is TargetState.OFFLINE
        for tid in (101, 102, 103, 104):
            assert fs.management.target(tid).state is TargetState.ONLINE

    def test_unknown_target_raises(self):
        fs = self.fs()
        schedule = FaultSchedule([target_outage(999, 0.0, 5.0)])
        with pytest.raises(NoSuchEntityError):
            schedule.apply_to_management(fs.management, time=0.0)


class TestBuilders:
    def test_random_outages_deterministic_per_seed(self):
        kwargs = dict(horizon_s=1000.0, mtbf_s=200.0, mttr_s=20.0)
        a = FaultSchedule.random_target_outages([101, 201], seed=7, **kwargs)
        b = FaultSchedule.random_target_outages([101, 201], seed=7, **kwargs)
        c = FaultSchedule.random_target_outages([101, 201], seed=8, **kwargs)
        assert a.events == b.events
        assert a.events != c.events

    def test_random_outages_fall_inside_horizon(self):
        schedule = FaultSchedule.random_target_outages(
            [101], horizon_s=500.0, mtbf_s=50.0, mttr_s=10.0, seed=3
        )
        assert len(schedule) > 0
        for event in schedule:
            assert 0.0 <= event.start_s < 500.0
            assert event.kind is FaultKind.TARGET_OFFLINE

    def test_random_outages_validation(self):
        with pytest.raises(FaultError):
            FaultSchedule.random_target_outages([101], horizon_s=0.0, mtbf_s=1.0, mttr_s=1.0)

    def test_flapping_link_period_structure(self):
        schedule = FaultSchedule.flapping_link(
            "link:n0", horizon_s=10.0, period_s=2.0, down_fraction=0.25, multiplier=0.5
        )
        assert len(schedule) == 5
        starts = [e.start_s for e in schedule]
        assert starts == [0.0, 2.0, 4.0, 6.0, 8.0]
        assert all(e.duration_s == pytest.approx(0.5) for e in schedule)
        # Down 25% of each period, up the rest.
        assert schedule.multiplier("link:n0", 0.1) == 0.5
        assert schedule.multiplier("link:n0", 1.0) == 1.0

    def test_flapping_validation(self):
        with pytest.raises(FaultError):
            FaultSchedule.flapping_link(
                "link:n0", horizon_s=10.0, period_s=2.0, down_fraction=1.5, multiplier=0.5
            )
