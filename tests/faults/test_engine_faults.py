"""Fault injection end to end: both engines, degraded and identical paths."""

import pytest

from repro.beegfs.filesystem import BeeGFS, plafrim_deployment
from repro.engine.base import EngineOptions
from repro.engine.des_runner import DESEngine
from repro.engine.fluid_runner import FluidEngine
from repro.errors import InsufficientTargetsError
from repro.faults import FaultSchedule, target_outage
from repro.storage.client_model import RetryPolicy
from repro.units import MiB
from repro.workload.generator import single_application

STRIPE_ALL = "fixed:101,201,102,202"


def engine(calib, topo, engine_cls=FluidEngine, chooser=STRIPE_ALL, **opts):
    options = EngineOptions(noise_enabled=False, **opts)
    deployment = calib.deployment(stripe_count=4, chooser=chooser)
    return engine_cls(calib, topo, deployment, seed=0, options=options)


def small_app(topo):
    return single_application(topo, 8, ppn=8, total_bytes=2048 * MiB)


class TestZeroFaultIdentity:
    """An empty schedule must be byte-identical to no schedule at all."""

    @pytest.mark.parametrize("engine_cls", [FluidEngine, DESEngine])
    def test_empty_schedule_is_identical(self, calib_s1, topo_s1, engine_cls):
        baseline = engine(calib_s1, topo_s1, engine_cls).run([small_app(topo_s1)], rep=0)
        empty = engine(
            calib_s1, topo_s1, engine_cls, fault_schedule=FaultSchedule()
        ).run([small_app(topo_s1)], rep=0)
        assert empty.single == baseline.single
        assert empty.makespan == baseline.makespan
        assert empty.fault_events == () and empty.retries == 0
        assert empty.complete

    @pytest.mark.parametrize("engine_cls", [FluidEngine, DESEngine])
    def test_none_schedule_is_identical(self, calib_s1, topo_s1, engine_cls):
        baseline = engine(calib_s1, topo_s1, engine_cls).run([small_app(topo_s1)], rep=0)
        explicit = engine(
            calib_s1, topo_s1, engine_cls, fault_schedule=None
        ).run([small_app(topo_s1)], rep=0)
        assert explicit.single == baseline.single


class TestMidRunOutage:
    """A recoverable outage stretches the run; retries survive it."""

    def test_fluid_outage_extends_makespan(self, calib_s1, topo_s1):
        schedule = FaultSchedule([target_outage(201, 0.3, 0.5)])
        healthy = engine(calib_s1, topo_s1).run([small_app(topo_s1)], rep=0)
        faulty = engine(
            calib_s1, topo_s1, fault_schedule=schedule
        ).run([small_app(topo_s1)], rep=0)
        assert faulty.makespan > healthy.makespan
        assert faulty.complete
        assert faulty.single.volume_bytes == pytest.approx(healthy.single.volume_bytes)

    def test_des_outage_extends_makespan(self, calib_s1, topo_s1):
        schedule = FaultSchedule([target_outage(201, 0.1, 0.2)])
        healthy = engine(calib_s1, topo_s1, DESEngine).run([small_app(topo_s1)], rep=0)
        faulty = engine(
            calib_s1, topo_s1, DESEngine, fault_schedule=schedule
        ).run([small_app(topo_s1)], rep=0)
        assert faulty.makespan > healthy.makespan
        assert faulty.complete

    def test_trace_events_are_plain_dicts(self, calib_s1, topo_s1):
        schedule = FaultSchedule([target_outage(201, 0.3, 0.5)])
        retry = RetryPolicy(timeout_s=0.1, max_retries=8, backoff_base_s=0.05)
        result = engine(
            calib_s1, topo_s1, fault_schedule=schedule, retry=retry
        ).run([small_app(topo_s1)], rep=0)
        assert result.retries > 0
        assert len(result.fault_events) > 0
        for event in result.fault_events:
            assert event["action"] in ("retry", "abandon")
            assert isinstance(event["time"], float)
            assert isinstance(event["attempt"], int)


class TestPermanentOutage:
    """Exhausted retries abandon the flow; the run degrades, not crashes."""

    @pytest.mark.parametrize("engine_cls", [FluidEngine, DESEngine])
    def test_abandonment_loses_bytes_gracefully(self, calib_s1, topo_s1, engine_cls):
        # Permanent failure shortly after the run starts: flows to 201
        # exhaust their retries and are abandoned.
        schedule = FaultSchedule([target_outage(201, 0.05)])
        retry = RetryPolicy(timeout_s=0.05, max_retries=2, backoff_base_s=0.02)
        healthy = engine(calib_s1, topo_s1, engine_cls).run([small_app(topo_s1)], rep=0)
        result = engine(
            calib_s1, topo_s1, engine_cls, fault_schedule=schedule, retry=retry
        ).run([small_app(topo_s1)], rep=0)
        assert not result.complete
        assert result.abandoned_flows > 0
        assert result.retries > 0
        assert result.single.volume_bytes < healthy.single.volume_bytes
        assert any(e["action"] == "abandon" for e in result.fault_events)


class TestDegradedAllocation:
    """Choosers only see reachable targets."""

    def test_chooser_avoids_offline_target(self, calib_s1, topo_s1):
        schedule = FaultSchedule([target_outage(201, 0.0)])
        result = engine(
            calib_s1, topo_s1, chooser="roundrobin", fault_schedule=schedule
        ).run([small_app(topo_s1)], rep=0)
        assert 201 not in result.single.targets
        assert len(result.single.targets) == 4

    def test_failover_balances_survivors(self, calib_s1, topo_s1):
        schedule = FaultSchedule([target_outage(201, 0.0)])
        result = engine(
            calib_s1, topo_s1, chooser="failover", fault_schedule=schedule
        ).run([small_app(topo_s1)], rep=0)
        assert 201 not in result.single.targets
        assert result.single.placement_min_max == (2, 2)

    def test_strict_creation_raises_when_pool_too_small(self):
        fs = BeeGFS(plafrim_deployment(keep_data=True), seed=1)
        schedule = FaultSchedule(
            [target_outage(tid, 0.0) for tid in (101, 102, 103, 201, 202, 203)]
        )
        schedule.apply_to_management(fs.management, time=0.0)
        with pytest.raises(InsufficientTargetsError) as exc_info:
            fs.create_file("/f.dat", strict=True)
        exc = exc_info.value
        assert exc.requested == 4
        assert exc.available == 2
        assert sorted(exc.pool_ids) == [104, 204]

    def test_lenient_creation_clamps_to_survivors(self):
        fs = BeeGFS(plafrim_deployment(keep_data=True), seed=1)
        schedule = FaultSchedule(
            [target_outage(tid, 0.0) for tid in (101, 102, 103, 201, 202, 203)]
        )
        schedule.apply_to_management(fs.management, time=0.0)
        inode = fs.create_file("/f.dat")
        assert sorted(inode.pattern.targets) == [104, 204]
