"""The acceptance scenario: a faulty campaign survives, resumes, renders."""

import pytest

from repro.engine.base import EngineOptions
from repro.faults import FaultSchedule, target_outage
from repro.methodology.plan import ExperimentSpec
from repro.methodology.records import RecordStore
from repro.storage.client_model import RetryPolicy
from repro.experiments.common import run_specs


def campaign_specs(chooser="fixed:101,201,102,202"):
    return [
        ExperimentSpec(
            "camp",
            "scenario1",
            {
                "chooser": chooser,
                "stripe_count": 4,
                "num_nodes": 8,
                "ppn": 8,
                "total_gib": 1,
            },
        )
    ]


def faulty_options():
    return EngineOptions(
        noise_enabled=False,
        fault_schedule=FaultSchedule([target_outage(201, 0.1, 0.2)]),
        retry=RetryPolicy(timeout_s=0.05, max_retries=8, backoff_base_s=0.02),
    )


class TestFaultyCampaign:
    def test_campaign_with_outage_completes_under_skip(self):
        store = run_specs(
            campaign_specs(),
            repetitions=3,
            seed=0,
            options=faulty_options(),
            on_error="skip",
        )
        assert len(store) == 3
        assert store.failures == []
        for record in store:
            assert record.retries > 0
            assert record.complete
            assert any(e["action"] == "retry" for e in record.fault_events)

    def test_raising_specs_are_quarantined(self):
        store = run_specs(
            campaign_specs(chooser="bogus"),
            repetitions=2,
            seed=0,
            on_error="skip",
        )
        assert len(store) == 0
        assert len(store.failures) == 2
        assert all("bogus" in f.message for f in store.failures)

    def test_interrupted_campaign_resumes_missing_reps_only(self, tmp_path):
        path = tmp_path / "campaign.json"
        first = run_specs(
            campaign_specs(),
            repetitions=2,
            seed=0,
            options=faulty_options(),
            checkpoint=path,
            checkpoint_every=1,
        )
        assert len(RecordStore.read_json(path)) == 2
        # "Restart" the campaign at its full length: the two recorded
        # repetitions are skipped, only the missing ones execute.
        resumed = run_specs(
            campaign_specs(),
            repetitions=4,
            seed=0,
            options=faulty_options(),
            checkpoint=path,
            resume=True,
            checkpoint_every=1,
        )
        assert len(resumed) == 4
        assert {r.rep for r in resumed} == {0, 1, 2, 3}
        by_rep = {r.rep: r for r in resumed}
        for record in first:
            # The checkpointed records are reloaded verbatim, not re-run.
            assert by_rep[record.rep].aggregate_bw_mib_s == record.aggregate_bw_mib_s
            assert by_rep[record.rep].wall_clock_s == record.wall_clock_s


class TestFaultsExperiment:
    @pytest.fixture(scope="class")
    def faults_out(self):
        from repro.experiments import get_experiment

        return get_experiment("faults").run(repetitions=3, seed=1)

    def test_timeline_shows_outage_and_recovery(self, faults_out):
        assert "Target 201 offline" in faults_out.figure
        assert "chunk-request timeouts" in faults_out.figure
        timeline = {
            r.factors["condition"]: r
            for r in faults_out.records.filter(stage="timeline")
        }
        assert timeline["outage"].retries > 0
        assert timeline["outage"].complete
        assert timeline["healthy"].retries == 0

    def test_failover_beats_roundrobin_when_degraded(self, faults_out):
        degraded = faults_out.records.filter(stage=None)
        by_chooser = degraded.group_by_factor("chooser")
        failover = by_chooser["failover"]
        roundrobin = by_chooser["roundrobin"]
        assert all(min(r.placement) == max(r.placement) for r in failover)
        assert 201 not in {t for r in failover for t in r.apps[0]["targets"]}
        assert float(failover.bandwidths().mean()) >= float(roundrobin.bandwidths().mean())

    def test_renders_placement_distribution(self, faults_out):
        assert "permanently offline" in faults_out.figure
        assert "(2,2): 100%" in faults_out.figure
