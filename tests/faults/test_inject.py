"""Capacity wrapping: faults as a multiplier on the provider timeline."""

from repro.faults import FaultSchedule, FaultyCapacity, target_outage, degraded_target
from repro.faults.inject import wrap_providers
from repro.netsim.fluid import ResourceContext


class ConstantCapacity:
    def __init__(self, mib_s: float, distinct_tag: str | None = None):
        self.mib_s = mib_s
        if distinct_tag is not None:
            self.distinct_tag = distinct_tag

    def capacity(self, ctx: ResourceContext) -> float:
        return self.mib_s


def ctx(time: float) -> ResourceContext:
    return ResourceContext(time=time, depth=1.0, nflows=1, noise=1.0, distinct=1)


class TestFaultyCapacity:
    def test_multiplies_during_window(self):
        schedule = FaultSchedule([degraded_target(201, 2.0, 3.0, multiplier=0.25)])
        provider = FaultyCapacity(ConstantCapacity(1000.0), schedule, "ost:201")
        assert provider.capacity(ctx(0.0)) == 1000.0
        assert provider.capacity(ctx(2.5)) == 250.0
        assert provider.capacity(ctx(5.0)) == 1000.0

    def test_outage_zeroes(self):
        schedule = FaultSchedule([target_outage(201, 1.0, 1.0)])
        provider = FaultyCapacity(ConstantCapacity(1000.0), schedule, "ost:201")
        assert provider.capacity(ctx(1.5)) == 0.0

    def test_forwards_distinct_tag(self):
        schedule = FaultSchedule([target_outage(201, 0.0, 1.0)])
        tagged = FaultyCapacity(ConstantCapacity(10.0, distinct_tag="pool"), schedule, "ost:201")
        untagged = FaultyCapacity(ConstantCapacity(10.0), schedule, "ost:201")
        assert tagged.distinct_tag == "pool"
        assert untagged.distinct_tag is None


class TestWrapProviders:
    def providers(self):
        return {"ost:201": ConstantCapacity(100.0), "ost:101": ConstantCapacity(100.0)}

    def test_empty_schedule_wraps_nothing(self):
        providers = self.providers()
        wrapped = wrap_providers(providers, FaultSchedule())
        assert wrapped == providers
        assert not any(isinstance(p, FaultyCapacity) for p in wrapped.values())

    def test_only_affected_resources_wrapped(self):
        schedule = FaultSchedule([target_outage(201, 0.0, 1.0)])
        wrapped = wrap_providers(self.providers(), schedule)
        assert isinstance(wrapped["ost:201"], FaultyCapacity)
        assert not isinstance(wrapped["ost:101"], FaultyCapacity)

    def test_original_mapping_untouched(self):
        providers = self.providers()
        schedule = FaultSchedule([target_outage(201, 0.0, 1.0)])
        wrap_providers(providers, schedule)
        assert not isinstance(providers["ost:201"], FaultyCapacity)
