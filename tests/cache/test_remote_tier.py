"""The remote cache tier: read-through, write-behind, degradation.

A live in-thread ``repro serve`` instance answers ``cache-get`` /
``cache-put`` frames; a :class:`ChaosProxy` between client and server
injects the two network faults the tier must degrade through —
connection reset and a torn (half-written) frame.  The headline
contract: a remote-tier outage produces **zero failed runs**; the
campaign silently falls back to the local tiers.
"""

from __future__ import annotations

import pytest

from repro import service
from repro.cache import MemoryTier, RemoteTier, ResultCache, TieredCache
from repro.cache.remote import parse_address
from repro.errors import ConfigError
from repro.methodology.plan import ExperimentSpec
from repro.orchestrator.supervise import CircuitBreaker
from repro.scenario.compile import compile_scenario
from repro.server import ServerConfig
from repro.server.netchaos import ChaosProxy, serve_in_thread
from repro.service import get_service
from repro.verify.replay import result_fingerprint


def _spec(**factors):
    base = {"num_nodes": 2, "ppn": 4, "total_gib": 1, "stripe_count": 2}
    base.update(factors)
    return compile_scenario(ExperimentSpec("remotetest", "scenario1", base))


def _config(tmp_path, **overrides):
    defaults = dict(
        state_dir=tmp_path / "state",
        workers=1,
        io_timeout_s=5.0,
        wait_cap_s=2.0,
    )
    defaults.update(overrides)
    return ServerConfig(**defaults)


@pytest.fixture(autouse=True)
def _fresh_tiers():
    yield
    # Remote tiers and their breaker are process-wide service state;
    # never leak an address (or an open breaker) into the next test.
    get_service().reset_tiers()


def _delta(before, after):
    return {k: after[k] - before[k] for k in after}


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.0.0.1:9999") == ("10.0.0.1", 9999)

    def test_defects_rejected(self):
        for bad in ("nohost", ":123", "host:", "host:port"):
            with pytest.raises(ConfigError):
                parse_address(bad)


class TestRemoteTierRoundTrip:
    def test_put_then_get(self, tmp_path):
        spec = _spec()
        svc = get_service()
        local = ResultCache(tmp_path / "local")
        TieredCache(disk=local).store(spec, 0, svc.run(spec, 0, cache=False), [])
        entry = local.load(spec, 0)
        with serve_in_thread(_config(tmp_path)) as server:
            writer = RemoteTier("127.0.0.1", server.port)
            try:
                writer.store_entry(entry)
                assert writer.flush(timeout=10.0)
                assert writer.stats()["puts"] == 1
            finally:
                writer.close()
            reader = RemoteTier("127.0.0.1", server.port)
            try:
                assert reader.lookup(spec, 0) == entry
                assert reader.lookup(spec, 1) is None
            finally:
                reader.close()
            tally = server.stats()["remote_cache"]
            assert tally["puts"] == 1 and tally["get_hits"] == 1
            assert tally["get_misses"] == 1

    def test_gc_refused_client_side(self):
        tier = RemoteTier("127.0.0.1", 1)
        try:
            with pytest.raises(ConfigError):
                tier.gc(0)
        finally:
            tier.close()


class TestServiceThroughRemote:
    def test_warm_from_remote_backfills_local(self, tmp_path):
        spec = _spec()
        svc = get_service()
        with serve_in_thread(_config(tmp_path)) as server:
            address = f"127.0.0.1:{server.port}"
            cold_dir = tmp_path / "cold"
            before = service.cache_stats()
            cold = svc.run(spec, 0, cache_dir=cold_dir, cache_remote=address)
            assert _delta(before, service.cache_stats())["miss"] == 1
            assert svc.flush_remote()

            # A different machine (fresh cache root, empty hot tier)
            # warms from the shared remote tier alone.
            warm_dir = tmp_path / "warm"
            svc.drop_memory_tiers()
            before = service.cache_stats()
            warm = svc.run(spec, 0, cache_dir=warm_dir, cache_remote=address)
            delta = _delta(before, service.cache_stats())
            assert delta["hit"] == 1 and delta["miss"] == 0
            assert result_fingerprint(warm) == result_fingerprint(cold)
            # The remote hit was made durable locally (backfill).
            assert ResultCache(warm_dir).load(spec, 0) is not None

    def test_remote_down_degrades_with_zero_failed_runs(self, tmp_path):
        spec = _spec()
        svc = get_service()
        # A port nothing listens on: every probe is a fast OSError.
        dead = "127.0.0.1:9"
        before = service.cache_stats()
        results = [
            svc.run(spec, rep, cache_dir=tmp_path / "cache", cache_remote=dead)
            for rep in range(4)
        ]
        delta = _delta(before, service.cache_stats())
        assert len(results) == 4  # zero failed runs
        assert delta["miss"] == 4 and delta["error"] == 0
        # Repeated faults opened the *remote* breaker; the disk breaker
        # (the run-level accounting) never saw them.
        assert svc.remote_breaker.state == "open"
        assert svc.breaker.state == "closed"
        # And the local disk tier kept every result.
        assert len(ResultCache(tmp_path / "cache")) == 4


class TestRemoteFaultInjection:
    def test_connection_reset_degrades_to_local(self, tmp_path):
        spec = _spec()
        svc = get_service()
        with serve_in_thread(_config(tmp_path)) as server:
            with ChaosProxy(server.port, mode="reset", fault_after_bytes=0) as proxy:
                address = f"127.0.0.1:{proxy.port}"
                before = service.cache_stats()
                result = svc.run(
                    spec, 0, cache_dir=tmp_path / "cache", cache_remote=address
                )
                delta = _delta(before, service.cache_stats())
                assert result is not None and proxy.faulted
                assert delta["miss"] == 1 and delta["error"] == 0
                assert svc.remote_breaker.failures >= 1

    def test_half_frame_degrades_to_local(self, tmp_path):
        spec = _spec()
        svc = get_service()
        with serve_in_thread(_config(tmp_path)) as server:
            with ChaosProxy(
                server.port, mode="truncate", fault_after_bytes=0
            ) as proxy:
                address = f"127.0.0.1:{proxy.port}"
                before = service.cache_stats()
                result = svc.run(
                    spec, 0, cache_dir=tmp_path / "cache", cache_remote=address
                )
                delta = _delta(before, service.cache_stats())
                assert result is not None and proxy.faulted
                assert delta["miss"] == 1 and delta["error"] == 0

    def test_lookup_raises_normalized_oserror(self, tmp_path):
        spec = _spec()
        with serve_in_thread(_config(tmp_path)) as server:
            with ChaosProxy(server.port, mode="reset", fault_after_bytes=0) as proxy:
                tier = RemoteTier("127.0.0.1", proxy.port, timeout_s=2.0)
                try:
                    with pytest.raises(OSError):
                        tier.lookup(spec, 0)
                finally:
                    tier.close()

    def test_composite_breaker_opens_and_skips_probes(self, tmp_path):
        spec = _spec()
        svc = get_service()
        disk = ResultCache(tmp_path / "cache")
        breaker = CircuitBreaker()
        dead = RemoteTier("127.0.0.1", 9, timeout_s=0.5)
        try:
            tiers = TieredCache(
                disk=disk, memory=MemoryTier(), remote=dead, remote_breaker=breaker
            )
            for _ in range(3):
                assert tiers.lookup(spec, 0) is None
            assert breaker.state == "open"
            # While open, lookups skip the remote probe entirely.
            from repro.cache.tiered import reset_tier_stats, tier_stats

            reset_tier_stats()
            assert tiers.lookup(spec, 0) is None
            stats = tier_stats()["remote"]
            assert stats["degraded"] == 1 and stats["error"] == 0
        finally:
            dead.close()
