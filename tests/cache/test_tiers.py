"""The tiered cache subsystem: tiers in isolation and the composite.

The contract under test: every tier speaks whole validated entries;
the disk tier quarantines corruption and touches mtime on hits so GC
is true LRU; the memory tier is a bounded LRU; the composite promotes
hits into faster tiers and only ever admits entries the tier of record
has made durable.
"""

from __future__ import annotations

import json
import os
from types import SimpleNamespace

import pytest

from repro.cache import (
    CACHE_SCHEMA,
    MemoryTier,
    ResultCache,
    TieredCache,
    entry_key,
    make_entry,
    validate_entry,
)
from repro.cache.tiered import reset_tier_stats, tier_stats
from repro.errors import ConfigError
from repro.methodology.plan import ExperimentSpec
from repro.scenario import MODEL_REVISION
from repro.scenario.compile import compile_scenario
from repro.service import get_service
from repro.verify.replay import result_fingerprint


def _spec(**factors):
    base = {"num_nodes": 2, "ppn": 4, "total_gib": 1, "stripe_count": 2}
    base.update(factors)
    return compile_scenario(ExperimentSpec("tiertest", "scenario1", base))


def _fake_spec(fp: str, engine: str = "fluid"):
    """Key-shaped stand-in: the memory tier only reads these two attrs."""
    return SimpleNamespace(fingerprint=fp, engine=engine)


def _entry(fp: str = "ab" * 8, rep: int = 0, pad: int = 0) -> dict:
    return {
        "schema": CACHE_SCHEMA,
        "fingerprint": fp,
        "model_revision": MODEL_REVISION,
        "engine": "fluid",
        "rep": rep,
        "spec": {},
        "result": {"pad": "x" * pad},
        "events": [],
    }


class TestValidateEntry:
    def test_well_formed_accepted(self):
        assert validate_entry(_entry())

    def test_key_match_enforced(self):
        entry = _entry(fp="cd" * 8, rep=3)
        assert validate_entry(entry, fingerprint="cd" * 8, engine="fluid", rep=3)
        assert not validate_entry(entry, fingerprint="ab" * 8)
        assert not validate_entry(entry, engine="des")
        assert not validate_entry(entry, rep=4)

    def test_defects_rejected(self):
        assert not validate_entry(None)
        assert not validate_entry({**_entry(), "schema": 99})
        assert not validate_entry({**_entry(), "fingerprint": "../evil"})
        assert not validate_entry({**_entry(), "engine": "no/slash"})
        assert not validate_entry({**_entry(), "rep": True})
        assert not validate_entry({**_entry(), "rep": "0"})
        assert not validate_entry({**_entry(), "model_revision": "1"})
        entry = _entry()
        del entry["result"]
        assert not validate_entry(entry)

    def test_revision_pinning(self):
        assert validate_entry(_entry(), model_revision=MODEL_REVISION)
        assert not validate_entry(_entry(), model_revision=MODEL_REVISION + 1)

    def test_entry_key(self):
        assert entry_key(_entry(fp="ef" * 8, rep=2)) == ("ef" * 8, "fluid", 2)


class TestMemoryTier:
    def test_store_then_hit(self):
        tier = MemoryTier()
        entry = _entry()
        tier.store_entry(entry)
        got = tier.lookup(_fake_spec(entry["fingerprint"]), 0)
        assert got == entry
        assert tier.lookup(_fake_spec(entry["fingerprint"]), 1) is None

    def test_malformed_silently_rejected(self):
        tier = MemoryTier()
        tier.store_entry({**_entry(), "schema": 99})
        tier.store_entry({**_entry(), "model_revision": MODEL_REVISION + 1})
        assert len(tier) == 0

    def test_lru_eviction_by_count(self):
        tier = MemoryTier(max_entries=2)
        a, b, c = (_entry(rep=r) for r in range(3))
        tier.store_entry(a)
        tier.store_entry(b)
        # Touch a: it becomes most-recent, so admitting c evicts b.
        assert tier.lookup(_fake_spec(a["fingerprint"]), 0) is not None
        tier.store_entry(c)
        assert tier.lookup(_fake_spec(a["fingerprint"]), 0) is not None
        assert tier.lookup(_fake_spec(b["fingerprint"]), 1) is None
        assert tier.lookup(_fake_spec(c["fingerprint"]), 2) is not None

    def test_byte_budget_eviction(self):
        one = len(json.dumps(_entry(pad=100), separators=(",", ":")))
        tier = MemoryTier(max_bytes=2 * one + 1)
        for rep in range(3):
            tier.store_entry(_entry(rep=rep, pad=100))
        assert len(tier) == 2
        assert tier.stats()["bytes"] <= 2 * one + 1

    def test_gc_dry_run_predicts_real_pass(self):
        tier = MemoryTier()
        for rep in range(4):
            tier.store_entry(_entry(rep=rep, pad=50))
        predicted = tier.gc(0, dry_run=True)
        assert len(tier) == 4  # dry run deleted nothing
        actual = tier.gc(0)
        assert (predicted["evicted"], predicted["freed_bytes"]) == (
            actual["evicted"],
            actual["freed_bytes"],
        )
        assert len(tier) == 0

    def test_drop_and_clear(self):
        tier = MemoryTier()
        entry = _entry()
        tier.store_entry(entry)
        tier.drop(_fake_spec(entry["fingerprint"]), 0)
        assert len(tier) == 0 and tier.stats()["bytes"] == 0
        tier.store_entry(entry)
        tier.clear()
        assert len(tier) == 0 and tier.stats()["bytes"] == 0

    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigError):
            MemoryTier(max_entries=0)
        with pytest.raises(ConfigError):
            MemoryTier(max_bytes=0)


class TestDiskTier:
    def test_path_traversal_rejected(self, tmp_path):
        store = ResultCache(tmp_path)
        with pytest.raises(ConfigError):
            store.path_for_key("../../etc/passwd", "fluid", 0)
        with pytest.raises(ConfigError):
            store.path_for_key("ab" * 8, "../evil", 0)
        assert store.load_key("not hex!", "fluid", 0) is None

    def test_store_entry_then_load_key(self, tmp_path):
        store = ResultCache(tmp_path)
        entry = _entry()
        store.store_entry(entry)
        assert store.load_key(entry["fingerprint"], "fluid", 0) == entry
        assert store.load_key(entry["fingerprint"], "fluid", 1) is None

    def test_malformed_entry_refused(self, tmp_path):
        with pytest.raises(ConfigError):
            ResultCache(tmp_path).store_entry({**_entry(), "schema": 99})

    def test_touch_on_hit_refreshes_mtime(self, tmp_path):
        store = ResultCache(tmp_path)
        entry = _entry()
        path = store.store_entry(entry)
        os.utime(path, (1000.0, 1000.0))
        assert store.load_key(entry["fingerprint"], "fluid", 0) is not None
        assert path.stat().st_mtime > 1000.0

    def test_touch_on_hit_makes_gc_lru(self, tmp_path):
        store = ResultCache(tmp_path)
        old, hot = _entry(rep=0), _entry(rep=1)
        p_old = store.store_entry(old)
        p_hot = store.store_entry(hot)
        # Age both, then *hit* one: GC under pressure must evict the
        # untouched entry, not the recently-read one.
        os.utime(p_old, (1000.0, 1000.0))
        os.utime(p_hot, (1001.0, 1001.0))
        assert store.load_key(old["fingerprint"], "fluid", 0) is not None
        keep = p_old.stat().st_size + 1
        summary = store.gc(keep)
        assert summary["evicted"] == 1
        assert p_old.exists() and not p_hot.exists()

    def test_quarantine_on_corruption(self, tmp_path):
        seen: list = []
        store = ResultCache(tmp_path, on_corrupt=seen.append)
        entry = _entry()
        path = store.store_entry(entry)
        path.write_text("{not json")
        assert store.load_key(entry["fingerprint"], "fluid", 0) is None
        corrupt = path.with_name(path.name + ".corrupt")
        assert corrupt.exists() and not path.exists()
        assert seen == [path]
        stats = store.stats()
        assert stats["corrupt"] == 1 and stats["entries"] == 0
        # Quarantined files are still evictable.
        summary = store.gc(0)
        assert summary["evicted"] == 1 and not corrupt.exists()

    def test_header_mismatch_is_not_quarantined(self, tmp_path):
        seen: list = []
        store = ResultCache(tmp_path, on_corrupt=seen.append)
        entry = _entry()
        path = store.store_entry(entry)
        path.write_text(json.dumps({**entry, "model_revision": MODEL_REVISION + 1}))
        assert store.load_key(entry["fingerprint"], "fluid", 0) is None
        assert path.exists() and seen == []


class TestTieredCache:
    def test_store_populates_memory_and_disk(self, tmp_path):
        spec = _spec()
        svc = get_service()
        memory = MemoryTier()
        tiers = TieredCache(disk=ResultCache(tmp_path), memory=memory)
        cold = svc.run(spec, 0, cache=False)
        tiers.store(spec, 0, cold, [])
        assert len(ResultCache(tmp_path)) == 1
        assert memory.lookup(spec, 0) is not None

    def test_disk_hit_promotes_into_memory(self, tmp_path):
        spec = _spec()
        svc = get_service()
        disk = ResultCache(tmp_path)
        TieredCache(disk=disk).store(spec, 0, svc.run(spec, 0, cache=False), [])
        memory = MemoryTier()
        tiers = TieredCache(disk=disk, memory=memory)
        reset_tier_stats()
        entry = tiers.lookup(spec, 0)
        assert entry is not None
        assert memory.lookup(spec, 0) == entry
        stats = tier_stats()
        assert stats["memory"]["miss"] == 1 and stats["disk"]["hit"] == 1
        # Second probe answers from memory without touching disk.
        reset_tier_stats()
        assert tiers.lookup(spec, 0) == entry
        stats = tier_stats()
        assert stats["memory"]["hit"] == 1 and stats["disk"]["hit"] == 0

    def test_lookup_many_mixed_tiers(self, tmp_path):
        spec = _spec()
        svc = get_service()
        disk = ResultCache(tmp_path)
        memory = MemoryTier()
        tiers = TieredCache(disk=disk, memory=memory)
        for rep in range(2):
            tiers.store(spec, rep, svc.run(spec, rep, cache=False), [])
        memory.drop(spec, 1)  # rep 1 now answers from disk, rep 2 misses
        hits = tiers.lookup_many([(spec, 0), (spec, 1), (spec, 2)])
        keys = {(spec.fingerprint, spec.engine, r) for r in (0, 1)}
        assert set(hits) == keys
        assert memory.lookup(spec, 1) is not None  # promoted back

    def test_hit_replays_byte_identical(self, tmp_path):
        spec = _spec()
        svc = get_service()
        tiers = TieredCache(disk=ResultCache(tmp_path), memory=MemoryTier())
        cold = svc.run(spec, 0, cache=False)
        tiers.store(spec, 0, cold, [])
        from repro.engine.result import result_from_jsonable, result_to_jsonable

        # The codec-normalized cold result is what a cached run returns.
        cold = result_from_jsonable(result_to_jsonable(cold))
        warm = result_from_jsonable(tiers.lookup(spec, 0)["result"])
        assert result_fingerprint(warm) == result_fingerprint(cold)

    def test_gc_routing(self, tmp_path):
        tiers = TieredCache(disk=ResultCache(tmp_path), memory=MemoryTier())
        assert tiers.gc(0, tier="disk")["evicted"] == 0
        assert tiers.gc(0, tier="memory")["evicted"] == 0
        with pytest.raises(ConfigError):
            tiers.gc(0, tier="tape")

    def test_stats_names_every_tier(self, tmp_path):
        tiers = TieredCache(disk=ResultCache(tmp_path), memory=MemoryTier())
        stats = tiers.stats()
        assert set(stats) == {"memory", "disk"}
        assert "entries" in stats["disk"] and "hit" in stats["disk"]
