"""Concurrent disk-tier writers: many processes, one cache root.

The disk tier's atomic-write protocol (same-directory tempfile +
``os.replace``) is what lets independent campaigns share a cache
directory.  Here several real processes hammer the same small key space
simultaneously; afterwards every entry must decode and validate — a
torn or interleaved write would fail both.
"""

from __future__ import annotations

import multiprocessing

from repro.cache import CACHE_SCHEMA, ResultCache, validate_entry
from repro.scenario import MODEL_REVISION

_FINGERPRINTS = [f"{i:02x}" * 8 for i in range(4)]
_REPS = (0, 1)


def _entry(fp: str, rep: int, writer: int) -> dict:
    # Each writer pads differently so concurrent stores of the same key
    # race with *different* bodies — the worst case for interleaving.
    return {
        "schema": CACHE_SCHEMA,
        "fingerprint": fp,
        "model_revision": MODEL_REVISION,
        "engine": "fluid",
        "rep": rep,
        "spec": {},
        "result": {"writer": writer, "pad": "x" * (100 + writer * 37)},
        "events": [],
    }


def _hammer(root: str, writer: int, rounds: int) -> None:
    store = ResultCache(root)
    for _ in range(rounds):
        for fp in _FINGERPRINTS:
            for rep in _REPS:
                store.store_entry(_entry(fp, rep, writer))


class TestConcurrentWriters:
    def test_parallel_processes_never_tear_entries(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(target=_hammer, args=(str(tmp_path), writer, 10))
            for writer in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        store = ResultCache(tmp_path)
        assert len(store) == len(_FINGERPRINTS) * len(_REPS)
        assert store.stats()["corrupt"] == 0
        for fp in _FINGERPRINTS:
            for rep in _REPS:
                entry = store.load_key(fp, "fluid", rep)
                assert entry is not None, f"({fp}, {rep}) unreadable after race"
                assert validate_entry(entry, fingerprint=fp, rep=rep)
                # The body is one writer's whole payload, never a blend.
                writer = entry["result"]["writer"]
                assert entry["result"]["pad"] == "x" * (100 + writer * 37)

    def test_no_tempfile_litter(self, tmp_path):
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(target=_hammer, args=(str(tmp_path), writer, 3))
            for writer in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        leftovers = list(tmp_path.rglob("*.tmp"))
        assert leftovers == []
