"""The DES kernel: processes, timeouts, waiting semantics."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.simcore.kernel import Simulator, Timeout


class TestClockAndScheduling:
    def test_run_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        assert sim.run() == 5.0
        assert fired == [5.0]

    def test_run_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)


class TestProcesses:
    def test_timeout_sequence(self):
        sim = Simulator()
        trace = []

        def body():
            trace.append(sim.now)
            yield Timeout(2.0)
            trace.append(sim.now)
            yield Timeout(3.0)
            trace.append(sim.now)
            return "done"

        proc = sim.process(body())
        sim.run()
        assert trace == [0.0, 2.0, 5.0]
        assert proc.value == "done"

    def test_processes_wait_on_each_other(self):
        sim = Simulator()

        def worker():
            yield Timeout(4.0)
            return 99

        def boss():
            result = yield sim.process(worker())
            return result + 1

        assert sim.run_process(boss()) == 100

    def test_wait_on_event_value(self):
        sim = Simulator()
        ev = sim.event("data")

        def producer():
            yield Timeout(1.0)
            ev.succeed("payload")

        def consumer():
            value = yield ev
            return (sim.now, value)

        sim.process(producer())
        proc = sim.process(consumer())
        sim.run()
        assert proc.value == (1.0, "payload")

    def test_wait_all_list(self):
        sim = Simulator()
        e1, e2 = sim.event(), sim.event()
        sim.schedule(1.0, lambda: e1.succeed("a"))
        sim.schedule(2.0, lambda: e2.succeed("b"))

        def body():
            values = yield [e1, e2]
            return (sim.now, values)

        proc = sim.process(body())
        sim.run()
        assert proc.value == (2.0, ["a", "b"])

    def test_event_failure_propagates(self):
        sim = Simulator()
        ev = sim.event()
        sim.schedule(1.0, lambda: ev.fail(ValueError("bad")))

        def body():
            try:
                yield ev
            except ValueError:
                return "caught"

        assert sim.run_process(body()) == "caught"

    def test_uncaught_failure_marks_process(self):
        sim = Simulator()

        def body():
            yield Timeout(1.0)
            raise RuntimeError("oops")

        proc = sim.process(body())
        sim.run()
        assert proc.triggered and proc.exception is not None
        with pytest.raises(RuntimeError):
            _ = proc.value

    def test_interrupt(self):
        sim = Simulator()

        def body():
            try:
                yield Timeout(100.0)
            except SimulationError:
                return sim.now

        proc = sim.process(body())
        sim.schedule(3.0, proc.interrupt)
        sim.run()
        assert proc.value == 3.0

    def test_yield_garbage_fails_process(self):
        sim = Simulator()

        def body():
            yield 42

        proc = sim.process(body())
        sim.run()
        assert proc.exception is not None

    def test_deadlock_detection(self):
        sim = Simulator()

        def body():
            yield sim.event("never")

        sim.process(body())
        with pytest.raises(DeadlockError):
            sim.run()

    def test_non_generator_rejected(self):
        with pytest.raises(TypeError):
            Simulator().process(lambda: None)  # type: ignore[arg-type]

    def test_many_processes_deterministic(self):
        def run_once():
            sim = Simulator()
            order = []

            def body(i):
                yield Timeout(float(i % 3))
                order.append(i)

            for i in range(20):
                sim.process(body(i))
            sim.run()
            return order

        assert run_once() == run_once()
