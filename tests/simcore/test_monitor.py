"""Traces and time series."""

import numpy as np
import pytest

from repro.simcore.monitor import Probe, TimeSeries, Trace


class TestTrace:
    def test_record_and_select(self):
        tr = Trace()
        tr.record(0.0, "bw", 100)
        tr.record(1.0, "qlen", 3)
        tr.record(2.0, "bw", 120)
        assert [r.value for r in tr.select("bw")] == [100, 120]
        assert tr.keys() == {"bw", "qlen"}
        assert len(tr) == 3

    def test_out_of_order_rejected(self):
        tr = Trace()
        tr.record(5.0, "x", 1)
        with pytest.raises(ValueError):
            tr.record(4.0, "x", 2)

    def test_series_extraction(self):
        tr = Trace()
        tr.record(0.0, "bw", 10.0)
        tr.record(2.0, "bw", 20.0)
        series = tr.series("bw")
        assert series.value_at(1.0) == 10.0
        assert series.value_at(2.0) == 20.0


class TestTimeSeries:
    def test_step_semantics(self):
        ts = TimeSeries([0.0, 10.0], [5.0, 1.0])
        assert ts.value_at(-1.0) == 0.0
        assert ts.value_at(0.0) == 5.0
        assert ts.value_at(9.999) == 5.0
        assert ts.value_at(10.0) == 1.0
        assert ts.value_at(100.0) == 1.0

    def test_integrate(self):
        ts = TimeSeries([0.0, 10.0], [5.0, 1.0])
        assert ts.integrate(0.0, 20.0) == pytest.approx(5.0 * 10 + 1.0 * 10)
        assert ts.integrate(5.0, 15.0) == pytest.approx(5.0 * 5 + 1.0 * 5)

    def test_integrate_before_first_sample(self):
        ts = TimeSeries([10.0], [2.0])
        assert ts.integrate(0.0, 10.0) == 0.0

    def test_mean(self):
        ts = TimeSeries([0.0, 10.0], [4.0, 0.0])
        assert ts.mean(0.0, 20.0) == pytest.approx(2.0)

    def test_append_order_enforced(self):
        ts = TimeSeries()
        ts.append(1.0, 10.0)
        with pytest.raises(ValueError):
            ts.append(0.5, 20.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries([0.0, 1.0], [1.0])

    def test_as_arrays(self):
        ts = TimeSeries([0.0, 1.0], [1.0, 2.0])
        times, values = ts.as_arrays()
        assert isinstance(times, np.ndarray)
        assert times.tolist() == [0.0, 1.0]
        assert values.tolist() == [1.0, 2.0]


class TestProbe:
    def test_sampling(self):
        state = {"v": 1.0}
        probe = Probe("queue", lambda: state["v"])
        probe.sample(0.0)
        state["v"] = 3.0
        probe.sample(1.0)
        assert probe.series.values == [1.0, 3.0]


class TestDeprecation:
    def test_trace_warns(self):
        with pytest.warns(DeprecationWarning, match="Trace is deprecated"):
            Trace()

    def test_probe_warns(self):
        with pytest.warns(DeprecationWarning, match="Probe is deprecated"):
            Probe("q", lambda: 0.0)

    def test_timeseries_does_not_warn(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            TimeSeries([0.0], [1.0])
