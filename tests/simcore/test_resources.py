"""Resources, containers and stores."""

import pytest

from repro.errors import SimulationError
from repro.simcore.kernel import Simulator, Timeout
from repro.simcore.resources import Container, Resource, Store


class TestResource:
    def test_capacity_enforced_fifo(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []

        def user(name, hold):
            req = res.request()
            yield req
            log.append((sim.now, name, "in"))
            yield Timeout(hold)
            res.release()
            log.append((sim.now, name, "out"))

        sim.process(user("a", 2.0))
        sim.process(user("b", 1.0))
        sim.run()
        # The handed-over unit wakes "b" synchronously inside release(),
        # so "b in" logs before "a out" at t=2.
        assert log == [(0.0, "a", "in"), (2.0, "b", "in"), (2.0, "a", "out"), (3.0, "b", "out")]

    def test_parallel_within_capacity(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        done = []

        def user(name):
            yield res.request()
            yield Timeout(1.0)
            res.release()
            done.append((name, sim.now))

        for name in "abc":
            sim.process(user(name))
        sim.run()
        assert done == [("a", 1.0), ("b", 1.0), ("c", 2.0)]

    def test_queue_length_tracking(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        res.request()
        res.request()
        res.request()
        assert res.in_use == 1
        assert res.queue_length == 2

    def test_release_idle_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            Resource(sim, capacity=1).release()

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)


class TestContainer:
    def test_get_blocks_until_put(self):
        sim = Simulator()
        box = Container(sim, init=0.0)
        got = []

        def consumer():
            yield box.get(5.0)
            got.append(sim.now)

        def producer():
            yield Timeout(2.0)
            box.put(5.0)

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [2.0]
        assert box.level == 0.0

    def test_overflow_rejected(self):
        box = Container(Simulator(), init=0.0, capacity=1.0)
        with pytest.raises(SimulationError):
            box.put(2.0)

    def test_fifo_getters(self):
        sim = Simulator()
        box = Container(sim, init=0.0)
        order = []

        def consumer(name, amount):
            yield box.get(amount)
            order.append(name)

        sim.process(consumer("big", 10.0))
        sim.process(consumer("small", 1.0))
        sim.schedule(1.0, lambda: box.put(11.0))
        sim.run()
        # FIFO: the big request is served first even though the small
        # one could have been satisfied earlier.
        assert order == ["big", "small"]

    def test_invalid_init(self):
        with pytest.raises(ValueError):
            Container(Simulator(), init=-1.0)


class TestStore:
    def test_put_get_order(self):
        sim = Simulator()
        store = Store(sim)
        store.put("a")
        store.put("b")
        got = []

        def consumer():
            item = yield store.get()
            got.append(item)
            item = yield store.get()
            got.append(item)

        sim.process(consumer())
        sim.run()
        assert got == ["a", "b"]

    def test_get_blocks(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((sim.now, item))

        sim.process(consumer())
        sim.schedule(3.0, lambda: store.put("late"))
        sim.run()
        assert got == [(3.0, "late")]

    def test_len(self):
        store = Store(Simulator())
        assert len(store) == 0
        store.put(1)
        assert len(store) == 1
