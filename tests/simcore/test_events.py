"""Event queue and one-shot events."""

import pytest

from repro.errors import SimulationError
from repro.simcore.events import Event, EventQueue


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        fired = []
        q.push(2.0, lambda: fired.append("b"))
        q.push(1.0, lambda: fired.append("a"))
        q.push(3.0, lambda: fired.append("c"))
        while q:
            q.pop().fn()
        assert fired == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        q = EventQueue()
        fired = []
        for name in "abc":
            q.push(1.0, lambda n=name: fired.append(n))
        while q:
            q.pop().fn()
        assert fired == ["a", "b", "c"]

    def test_priority_before_seq(self):
        q = EventQueue()
        fired = []
        q.push(1.0, lambda: fired.append("low"), priority=1)
        q.push(1.0, lambda: fired.append("high"), priority=0)
        while q:
            q.pop().fn()
        assert fired == ["high", "low"]

    def test_cancel(self):
        q = EventQueue()
        fired = []
        handle = q.push(1.0, lambda: fired.append("x"))
        q.push(2.0, lambda: fired.append("y"))
        handle.cancel()
        assert len(q) == 1
        while q:
            q.pop().fn()
        assert fired == ["y"]

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        handle = q.push(1.0, lambda: None)
        q.push(5.0, lambda: None)
        handle.cancel()
        assert q.peek_time() == 5.0

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_empty_peek_none(self):
        assert EventQueue().peek_time() is None


class TestEvent:
    def test_succeed_carries_value(self):
        ev = Event("e")
        ev.succeed(41)
        assert ev.triggered and ev.ok
        assert ev.value == 41

    def test_callbacks_fire_on_trigger(self):
        ev = Event()
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        ev.succeed("v")
        assert got == ["v"]

    def test_late_callback_fires_immediately(self):
        ev = Event()
        ev.succeed(1)
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        assert got == [1]

    def test_fail_reraises_on_value(self):
        ev = Event()
        ev.fail(RuntimeError("boom"))
        assert ev.triggered and not ev.ok
        with pytest.raises(RuntimeError, match="boom"):
            _ = ev.value

    def test_double_trigger_rejected(self):
        ev = Event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self):
        with pytest.raises(TypeError):
            Event().fail("not an exception")

    def test_value_of_pending_raises(self):
        with pytest.raises(SimulationError):
            _ = Event("pending").value
