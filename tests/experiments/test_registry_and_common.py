"""Experiment registry, common machinery, and figure rendering."""

import pytest

from repro.errors import ExperimentError, WorkloadError
from repro.experiments import get_experiment, list_experiments
from repro.experiments.common import StandardExecutor, default_apps_builder
from repro.methodology.plan import ExperimentSpec
from repro.topology.builders import plafrim_omnipath
from repro.units import GiB


EXPECTED_IDS = {
    "fig2", "fig3", "fig4", "fig5", "fig6", "fig9", "fig11", "fig12", "fig13",
    "choosers", "lessons", "read", "patterns", "scaleout", "metadata", "chunksize", "interference",
    "faults",
}


class TestRegistry:
    def test_every_figure_registered(self):
        assert {info.exp_id for info in list_experiments()} == EXPECTED_IDS

    def test_lookup(self):
        info = get_experiment("fig6")
        assert "stripe count" in info.title
        assert info.default_repetitions == 100

    def test_unknown(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_infos_have_paper_refs(self):
        for info in list_experiments():
            assert info.paper_ref
            assert callable(info.run)


class TestDefaultAppsBuilder:
    def test_single_app_from_factors(self):
        topo = plafrim_omnipath(8)
        apps = default_apps_builder(topo, {"num_nodes": 4, "ppn": 8, "total_gib": 16})
        assert len(apps) == 1
        assert apps[0].num_nodes == 4
        assert apps[0].total_bytes == 16 * GiB

    def test_concurrent_apps_from_factors(self):
        topo = plafrim_omnipath(32)
        apps = default_apps_builder(topo, {"num_apps": 3, "nodes_per_app": 8, "ppn": 8})
        assert len(apps) == 3
        nodes = [n for a in apps for n in a.nodes]
        assert len(set(nodes)) == 24

    def test_unknown_pattern_rejected(self):
        topo = plafrim_omnipath(4)
        with pytest.raises(WorkloadError, match="n1-contiguous"):
            default_apps_builder(topo, {"pattern": "zigzag"})


class TestStandardExecutor:
    def test_caches_engines_per_spec(self):
        executor = StandardExecutor(seed=1)
        spec = ExperimentSpec("e", "scenario1", {"stripe_count": 2, "num_nodes": 2, "total_gib": 1})
        assert executor.engine(spec) is executor.engine(spec)

    def test_executes_and_varies_with_rep(self):
        executor = StandardExecutor(seed=1)
        spec = ExperimentSpec("e", "scenario2", {"stripe_count": 4, "num_nodes": 2, "total_gib": 2})
        a = executor(spec, 0).single.bandwidth_mib_s
        b = executor(spec, 1).single.bandwidth_mib_s
        assert a != b

    def test_chooser_factor_respected(self):
        executor = StandardExecutor(seed=1)
        spec = ExperimentSpec(
            "e",
            "scenario1",
            {"stripe_count": 2, "chooser": "fixed:201,202", "num_nodes": 2, "total_gib": 1},
        )
        result = executor(spec, 0)
        assert result.single.targets == (201, 202)
        assert result.single.placement == (0, 2)
