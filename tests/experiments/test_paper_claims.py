"""The paper's claims, asserted on regenerated experiment data.

Every test here corresponds to a sentence of the paper's Section IV —
the figure shapes (who wins, by roughly what factor, where crossovers
fall), the lesson boxes, and the in-text statistics.  This is the
definition of "reproduced" for this repository; EXPERIMENTS.md is the
prose record of the same comparisons.
"""

import numpy as np
import pytest

from repro.stats.bimodality import is_bimodal
from repro.stats.summary import describe
from repro.stats.tests import ks_normality, welch_ttest

from repro.experiments import exp_sharing


def means_by(records, factor):
    return {
        value: float(group.bandwidths().mean())
        for value, group in records.group_by_factor(factor).items()
    }


class TestFig2DataSize:
    def test_bandwidth_stabilises_by_32gib(self, fig2_out):
        """Performance stabilises between 16 and 32 GiB (Section III-B)."""
        for scenario in ("scenario1", "scenario2"):
            means = means_by(fig2_out.records.filter(scenario=scenario), "total_gib")
            assert means[32] == pytest.approx(means[64], rel=0.06)
            assert means[1] < 0.85 * means[32]

    def test_small_sizes_more_variable(self, fig2_out):
        """The shadow (max-min) shrinks with size (Figure 2)."""
        for scenario in ("scenario1", "scenario2"):
            sub = fig2_out.records.filter(scenario=scenario)
            rel_spread = {
                size: describe(group.bandwidths()).spread / group.bandwidths().mean()
                for size, group in sub.group_by_factor("total_gib").items()
            }
            assert rel_spread[1] > rel_spread[32]


class TestFig4NodeScaling:
    def test_scenario1_anchors(self, fig4_out):
        """~880 MiB/s at 1 node -> plateau ~1460 around 4 nodes (+64%)."""
        means = means_by(fig4_out.records.filter(scenario="scenario1"), "num_nodes")
        assert means[1] == pytest.approx(880, rel=0.10)
        assert means[8] == pytest.approx(1460, rel=0.10)
        assert means[4] > 0.95 * means[8]  # plateau reached by ~4 nodes
        gain = means[8] / means[1] - 1
        assert 0.4 < gain < 0.9  # paper: 64%

    def test_scenario2_anchors(self, fig4_out):
        """~1630 -> plateau needing far more nodes, heavier gain (~270%)."""
        means = means_by(fig4_out.records.filter(scenario="scenario2"), "num_nodes")
        assert means[1] == pytest.approx(1631, rel=0.10)
        peak = max(means.values())
        assert means[4] < 0.95 * peak  # NOT yet at plateau at 4 nodes
        assert means[16] > 0.93 * peak  # plateau around 16
        gain = peak / means[1] - 1
        assert gain > 1.5  # paper: 270%

    def test_storage_bound_needs_more_nodes_than_network_bound(self, fig4_out):
        def plateau(scenario):
            means = means_by(fig4_out.records.filter(scenario=scenario), "num_nodes")
            peak = max(means.values())
            return min(n for n, m in means.items() if m >= 0.95 * peak)

        assert plateau("scenario2") > plateau("scenario1")


class TestFig5ProcessesPerNode:
    def test_ppn16_close_to_ppn8(self, fig5_out):
        """Lesson 3: the curves nearly coincide."""
        for scenario in ("scenario1", "scenario2"):
            sub = fig5_out.records.filter(scenario=scenario)
            m8 = means_by(sub.filter(ppn=8), "num_nodes")
            m16 = means_by(sub.filter(ppn=16), "num_nodes")
            for n in set(m8) & set(m16):
                assert m16[n] == pytest.approx(m8[n], rel=0.12)

    def test_slight_degradation_not_gain_at_plateau(self, fig5_out):
        sub = fig5_out.records.filter(scenario="scenario2")
        m8 = means_by(sub.filter(ppn=8), "num_nodes")
        m16 = means_by(sub.filter(ppn=16), "num_nodes")
        top = max(m8)
        assert m16[top] <= m8[top] * 1.02


class TestFig6StripeCount:
    def test_scenario1_peak_only_at_2_6_8(self, fig6_out):
        """Peak (~2200) reachable only when a balanced placement exists."""
        sub = fig6_out.records.filter(scenario="scenario1")
        peak = 2200.0
        reaches = {
            k: bool(np.any(group.bandwidths() > 0.9 * peak))
            for k, group in sub.group_by_factor("stripe_count").items()
        }
        assert reaches == {1: False, 2: True, 3: False, 4: False, 5: False, 6: True, 7: False, 8: True}

    def test_scenario1_default_stripe4_below_half_peak_plus(self, fig6_out):
        """Stripe 4 keeps PlaFRIM below ~2/3 of the peak (the paper says
        'below 50%' against the absolute 2200 peak's full range)."""
        sub = fig6_out.records.filter(scenario="scenario1")
        stripe4 = sub.filter(stripe_count=4).bandwidths()
        assert np.max(stripe4) < 0.70 * 2200

    def test_scenario1_bimodal_sets(self, fig6_out):
        sub = fig6_out.records.filter(scenario="scenario1")
        verdicts = {
            k: is_bimodal(group.bandwidths()).bimodal
            for k, group in sub.group_by_factor("stripe_count").items()
        }
        assert verdicts[2] and verdicts[3] and verdicts[5] and verdicts[6]
        assert not verdicts[1] and not verdicts[4] and not verdicts[8]

    def test_scenario1_observed_placements_match_paper(self, fig6_out):
        sub = fig6_out.records.filter(scenario="scenario1")
        observed = {
            k: {r.placement for r in group}
            for k, group in sub.group_by_factor("stripe_count").items()
        }
        assert observed[4] == {(1, 3)}  # both round-robin windows are (1,3)
        assert observed[2] == {(1, 1), (0, 2)}
        assert observed[6] == {(3, 3), (2, 4)}
        assert observed[8] == {(4, 4)}

    def test_scenario1_balance_law(self, fig6_out):
        """Bandwidth ~ 1100 * k / max(a, b) per placement (Figure 8)."""
        sub = fig6_out.records.filter(scenario="scenario1")
        for placement, group in sub.group_by_placement().items():
            lo, hi = min(placement), max(placement)
            predicted = 1100.0 * (lo + hi) / hi
            assert float(group.bandwidths().mean()) == pytest.approx(predicted, rel=0.12), placement

    def test_scenario1_33_beats_13_by_about_half(self, fig6_out):
        """'the latter increases bandwidth by more than 49%'."""
        sub = fig6_out.records.filter(scenario="scenario1")
        mean13 = sub.filter(stripe_count=4).bandwidths().mean()
        six = sub.filter(stripe_count=6)
        mean33 = six.filter(predicate=lambda r: r.placement == (3, 3)).bandwidths().mean()
        assert mean33 / mean13 - 1 > 0.40

    def test_default_change_recommendation_gain(self, fig6_out):
        """Moving the default from 4 to 8 gains >= 40% (the estimate the
        paper gives for PlaFRIM's configuration change)."""
        sub = fig6_out.records.filter(scenario="scenario1")
        gain = sub.filter(stripe_count=8).bandwidths().mean() / sub.filter(
            stripe_count=4
        ).bandwidths().mean()
        assert gain - 1 >= 0.40

    def test_scenario2_growth_and_anchors(self, fig6_out):
        """~1764 (k=1) to ~8064 (k=8) mean, growing throughout."""
        sub = fig6_out.records.filter(scenario="scenario2")
        means = means_by(sub, "stripe_count")
        assert means[1] == pytest.approx(1764, rel=0.08)
        assert means[8] == pytest.approx(8064, rel=0.10)
        assert means[8] > means[6] > means[4] > means[2] > means[1]
        assert means[8] / means[1] > 3.5  # paper: +350%

    def test_scenario2_std_grows_with_stripe_count(self, fig6_out):
        """sigma 139.8 -> 787.9 in the paper (>460% growth)."""
        sub = fig6_out.records.filter(scenario="scenario2")
        std1 = float(np.std(sub.filter(stripe_count=1).bandwidths(), ddof=1))
        std8 = float(np.std(sub.filter(stripe_count=8).bandwidths(), ddof=1))
        assert std8 > 3.0 * std1
        assert std1 == pytest.approx(140, rel=0.6)

    def test_scenario2_balanced_beats_unbalanced_same_count(self, fig6_out):
        """(3,3) ~10.15% over (2,4) (Figure 10)."""
        six = fig6_out.records.filter(scenario="scenario2", stripe_count=6)
        balanced = six.filter(predicate=lambda r: r.placement == (3, 3)).bandwidths().mean()
        unbalanced = six.filter(predicate=lambda r: r.placement == (2, 4)).bandwidths().mean()
        assert 1.02 < balanced / unbalanced < 1.30


class TestFig11NodesByStripe:
    def test_higher_stripe_higher_peak(self, fig11_out):
        peaks = {}
        for k, group in fig11_out.records.group_by_factor("stripe_count").items():
            peaks[k] = max(means_by(group, "num_nodes").values())
        assert peaks[8] > peaks[4] > peaks[2] > peaks[1]

    def test_plateau_node_count_grows_with_stripe(self, fig11_out):
        plateaus = {}
        for k, group in fig11_out.records.group_by_factor("stripe_count").items():
            means = means_by(group, "num_nodes")
            peak = max(means.values())
            plateaus[k] = min(n for n, m in means.items() if m >= 0.95 * peak)
        assert plateaus[1] <= plateaus[2] <= plateaus[4] <= plateaus[8]
        assert plateaus[8] > plateaus[1]


class TestFig12Concurrency:
    @pytest.mark.parametrize("num_apps", [2, 3, 4])
    def test_aggregate_matches_scaled_baseline(self, fig12_out, num_apps):
        """Sharing all targets does not degrade global performance."""
        records = fig12_out.records
        for k in (2, 4, 8):
            concurrent = records.filter(num_apps=num_apps, stripe_count=k)
            scaled = records.filter(
                predicate=lambda r: r.factors.get("scaled_baseline_for") == f"{num_apps}x{k}"
            )
            agg = concurrent.aggregates().mean()
            base = scaled.bandwidths().mean()
            assert agg > 0.85 * base, (num_apps, k)

    def test_individual_bandwidth_drops_with_sharing_count(self, fig12_out):
        """Each app gets less than alone — bandwidth sharing, present
        even at stripe 2 where no targets are shared (up to ~20%)."""
        records = fig12_out.records
        single = records.filter(num_apps=1, stripe_count=2, num_nodes=8).filter(
            predicate=lambda r: "scaled_baseline_for" not in r.factors
        )
        base = single.bandwidths().mean()
        two = records.filter(num_apps=2, stripe_count=2)
        indiv = np.mean([app["bw_mib_s"] for r in two for app in r.apps])
        assert indiv < base
        assert indiv > 0.6 * base

    def test_stripe2_apps_never_share_targets(self, fig12_out):
        two = fig12_out.records.filter(num_apps=2, stripe_count=2)
        assert all(r.shared_target_count() == 0 for r in two)

    def test_stripe8_apps_always_share_everything(self, fig12_out):
        two = fig12_out.records.filter(num_apps=2, stripe_count=8)
        assert all(r.shared_target_count() == 8 for r in two)


class TestFig13Sharing:
    def test_mixture_of_cases(self, fig13_out):
        """All-shared happens in roughly one third of runs."""
        shared, distinct = exp_sharing.split_groups(fig13_out.records)
        total = len(fig13_out.records)
        assert len(shared) + len(distinct) == total  # only 0 or 4 overlap
        assert 0.15 < len(shared) / total < 0.55

    def test_welch_cannot_distinguish(self, fig13_out):
        """The paper's p = 0.9031: means not significantly different.

        Tested on per-run means (the independent unit; the two apps of
        one run share its system state).
        """
        shared, distinct = exp_sharing.split_groups(fig13_out.records)
        a = exp_sharing.run_mean_bandwidths(shared)
        b = exp_sharing.run_mean_bandwidths(distinct)
        result = welch_ttest(a, b)
        assert result.pvalue > 0.05
        assert abs(np.mean(a) / np.mean(b) - 1) < 0.05

    def test_groups_approximately_normal(self, fig13_out):
        shared, distinct = exp_sharing.split_groups(fig13_out.records)
        for group in (shared, distinct):
            values = exp_sharing.app_bandwidths(group)
            assert ks_normality(values).pvalue > 0.01
