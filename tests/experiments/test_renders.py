"""Every experiment's figure renders with the expected elements."""

import pytest

from repro.experiments import get_experiment


class TestAnalyticExperiments:
    def test_fig3_table(self):
        out = get_experiment("fig3").run()
        assert "min(N, M)" in out.figure
        assert "scenario1" in out.figure and "scenario2" in out.figure

    def test_fig9_timelines_show_balance_effect(self):
        out = get_experiment("fig9").run(seed=3)
        assert "(0,2)" in out.figure and "(1,1)" in out.figure
        bw = {r.factors["placement"]: r.bw_mib_s for r in out.records}
        assert bw["(1,1)"] > 1.8 * bw["(0,2)"]
        # The (1,1) run is roughly twice as fast.
        assert "2.0" in out.figure or "1.9" in out.figure or "2.1" in out.figure


class TestSimulatedRenders:
    @pytest.mark.parametrize(
        "exp_id,needles",
        [
            ("fig2", ["Fig 2 (scenario1", "spread"]),
            ("fig4", ["plateau (95% of peak)", "Fig 4 (scenario2"]),
            ("fig5", ["8 ppn", "16 ppn"]),
            ("fig6", ["Fig 8 (scenario1", "Fig 10 (scenario2", "(1,3)"]),
            ("fig11", ["plateau positions", "stripe 8"]),
        ],
    )
    def test_render_contains(self, exp_id, needles):
        out = get_experiment(exp_id).run(repetitions=4, seed=5)
        for needle in needles:
            assert needle in out.figure, f"{exp_id}: missing {needle!r}"
        assert len(out.records) > 0

    def test_fig12_bars_and_summary(self):
        out = get_experiment("fig12").run(repetitions=3, seed=5)
        assert "Fig 12 (2 concurrent apps)" in out.figure
        assert "aggregate (Eq.1)" in out.figure

    def test_fig13_test_report(self):
        out = get_experiment("fig13").run(repetitions=30, seed=5)
        assert "Welch t-test p" in out.figure
        assert "NOT significantly different" in out.figure

    def test_read_extension(self):
        out = get_experiment("read").run(repetitions=4, seed=5)
        assert "read vs write" in out.figure
        assert "scenario2" in out.figure

    def test_patterns_extension(self):
        out = get_experiment("patterns").run(repetitions=4, seed=5)
        assert "N-N vs N-1" in out.figure
        assert "targets used by N-N" in out.figure

    def test_scaleout_extension(self):
        out = get_experiment("scaleout").run(repetitions=3, seed=5)
        assert "8 storage hosts (32 targets)" in out.figure

    def test_metadata_extension(self):
        out = get_experiment("metadata").run(repetitions=2, seed=5)
        assert "creates/s" in out.figure
        assert "busiest MDS share" in out.figure

    def test_choosers_table(self):
        out = get_experiment("choosers").run(repetitions=4, seed=5)
        assert "roundrobin" in out.figure and "balanced" in out.figure
        assert "% bal" in out.figure

    def test_records_archivable(self, tmp_path):
        out = get_experiment("fig4").run(repetitions=2, seed=5)
        path = tmp_path / "fig4.csv"
        out.records.write_csv(path)
        assert path.exists()


class TestLessonsAudit:
    def test_all_lessons_pass_at_reduced_reps(self):
        out = get_experiment("lessons").run(repetitions=25, seed=2)
        assert "Lessons audit" in out.figure
        assert "FAIL" not in out.figure
        # 8 verdicts: lessons 1, 3, 4, 5, 6, 7 + the 40% recommendation.
        assert out.figure.count("PASS") >= 6
