"""Session-scoped experiment data for the paper-claims tests.

Experiments run once per session at reduced (but statistically
meaningful) repetition counts and are shared by every claim test.
"""

from __future__ import annotations

import pytest

from repro.experiments import get_experiment


@pytest.fixture(scope="session")
def fig2_out():
    return get_experiment("fig2").run(repetitions=20, seed=11)


@pytest.fixture(scope="session")
def fig4_out():
    return get_experiment("fig4").run(repetitions=25, seed=12)


@pytest.fixture(scope="session")
def fig5_out():
    return get_experiment("fig5").run(repetitions=15, seed=13)


@pytest.fixture(scope="session")
def fig6_out():
    return get_experiment("fig6").run(repetitions=40, seed=14)


@pytest.fixture(scope="session")
def fig11_out():
    return get_experiment("fig11").run(repetitions=15, seed=15)


@pytest.fixture(scope="session")
def fig12_out():
    return get_experiment("fig12").run(repetitions=15, seed=16)


@pytest.fixture(scope="session")
def fig13_out():
    return get_experiment("fig13").run(repetitions=60, seed=17)
