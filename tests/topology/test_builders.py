"""PlaFRIM platform builders."""

import pytest

from repro.errors import ConfigError
from repro.topology.builders import (
    ETHERNET_10G,
    OMNIPATH_100G,
    NetworkSpec,
    PlatformSpec,
    SWITCH_NAME,
    build_platform,
    compute_node_name,
    plafrim_ethernet,
    plafrim_omnipath,
    plafrim_spec,
    storage_host_name,
)
from repro.topology.graph import HostRole


class TestNetworkSpec:
    def test_ethernet_port_rate(self):
        assert ETHERNET_10G.link_mib_s == pytest.approx(1192.09, rel=1e-4)

    def test_omnipath_port_rate(self):
        assert OMNIPATH_100G.link_mib_s == pytest.approx(11920.9, rel=1e-4)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            NetworkSpec("bad", link_gbit_s=0)

    def test_fabric_must_exceed_port(self):
        with pytest.raises(ConfigError):
            NetworkSpec("bad", link_gbit_s=100, fabric_gbit_s=10)


class TestPlatformSpec:
    def test_plafrim_defaults(self):
        spec = plafrim_spec(ETHERNET_10G)
        assert spec.num_storage_hosts == 2
        assert spec.cores_per_node == 36  # two 18-core Xeons
        assert spec.node_memory_gib == 192

    def test_with_network(self):
        spec = plafrim_spec(ETHERNET_10G).with_network(OMNIPATH_100G)
        assert spec.network is OMNIPATH_100G

    def test_validation(self):
        with pytest.raises(ConfigError):
            PlatformSpec("p", ETHERNET_10G, num_compute_nodes=0)


class TestBuiltPlatforms:
    def test_counts(self):
        topo = plafrim_ethernet(8)
        assert len(topo.compute_nodes()) == 8
        assert len(topo.storage_hosts()) == 2
        assert len(topo.hosts(HostRole.SWITCH)) == 1
        # star: every non-switch host has exactly one link
        assert len(topo.links()) == 10

    def test_names(self):
        assert compute_node_name(0) == "bora001"
        assert storage_host_name(1) == "storage2"
        topo = plafrim_omnipath(4)
        assert "bora004" in topo
        assert "storage2" in topo

    def test_every_node_routes_to_storage(self):
        topo = plafrim_ethernet(4)
        for node in topo.compute_nodes():
            for server in topo.storage_hosts():
                route = topo.route(node.name, server.name)
                assert len(route) == 2
                assert all(SWITCH_NAME in (l.a, l.b) for l in route)

    def test_scenario_capacities_differ(self):
        eth = plafrim_ethernet(2)
        opa = plafrim_omnipath(2)
        assert opa.route_capacity("bora001", "storage1") == pytest.approx(
            10 * eth.route_capacity("bora001", "storage1")
        )

    def test_switch_carries_fabric_attr(self):
        topo = plafrim_ethernet(2)
        assert topo.host(SWITCH_NAME).attrs["fabric_mib_s"] > 0
