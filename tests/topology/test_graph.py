"""Topology graph: construction, queries, routing."""

import pytest

from repro.errors import RoutingError, TopologyError
from repro.topology.graph import Host, HostRole, Link, Topology


def star() -> Topology:
    topo = Topology("t")
    topo.add_host("sw", HostRole.SWITCH)
    topo.add_host("n1", HostRole.COMPUTE)
    topo.add_host("n2", HostRole.COMPUTE)
    topo.add_host("s1", HostRole.STORAGE)
    topo.add_link("n1", "sw", 100.0, 1e-6)
    topo.add_link("n2", "sw", 100.0, 1e-6)
    topo.add_link("sw", "s1", 200.0, 2e-6)
    return topo


class TestConstruction:
    def test_duplicate_host_rejected(self):
        topo = Topology()
        topo.add_host("a", HostRole.COMPUTE)
        with pytest.raises(TopologyError):
            topo.add_host("a", HostRole.COMPUTE)

    def test_link_requires_hosts(self):
        topo = Topology()
        topo.add_host("a", HostRole.COMPUTE)
        with pytest.raises(TopologyError):
            topo.add_link("a", "ghost", 1.0)

    def test_duplicate_link_rejected(self):
        topo = star()
        with pytest.raises(TopologyError):
            topo.add_link("sw", "n1", 5.0)  # same edge, either order

    def test_self_link_rejected(self):
        with pytest.raises(TopologyError):
            Link("a", "a", 1.0)

    def test_bad_capacity(self):
        with pytest.raises(TopologyError):
            Link("a", "b", 0.0)

    def test_empty_host_name(self):
        with pytest.raises(TopologyError):
            Host("", HostRole.COMPUTE)

    def test_add_star_helper(self):
        topo = Topology()
        topo.add_host("sw", HostRole.SWITCH)
        for n in ("a", "b"):
            topo.add_host(n, HostRole.COMPUTE)
        links = topo.add_star("sw", ["a", "b"], 10.0)
        assert len(links) == 2
        assert topo.degree("sw") == 2


class TestQueries:
    def test_roles(self):
        topo = star()
        assert [h.name for h in topo.compute_nodes()] == ["n1", "n2"]
        assert [h.name for h in topo.storage_hosts()] == ["s1"]

    def test_contains(self):
        topo = star()
        assert "n1" in topo and "ghost" not in topo

    def test_unknown_host_raises(self):
        with pytest.raises(TopologyError):
            star().host("ghost")

    def test_links_of(self):
        topo = star()
        assert len(topo.links_of("sw")) == 3
        assert len(topo.links_of("n1")) == 1

    def test_link_resource_id_order_free(self):
        assert Link("b", "a", 1.0).resource_id == Link("a", "b", 1.0).resource_id

    def test_link_other(self):
        link = Link("a", "b", 1.0)
        assert link.other("a") == "b"
        assert link.other("b") == "a"
        with pytest.raises(TopologyError):
            link.other("c")


class TestRouting:
    def test_route_via_switch(self):
        topo = star()
        route = topo.route("n1", "s1")
        assert [l.resource_id for l in route] == [
            "link:n1<->sw",
            "link:s1<->sw",
        ]

    def test_route_latency_and_capacity(self):
        topo = star()
        assert topo.route_latency("n1", "s1") == pytest.approx(3e-6)
        assert topo.route_capacity("n1", "s1") == 100.0

    def test_route_to_self_empty(self):
        assert star().route("n1", "n1") == []

    def test_no_route(self):
        topo = star()
        topo.add_host("island", HostRole.COMPUTE)
        with pytest.raises(RoutingError):
            topo.route("n1", "island")

    def test_validate(self):
        topo = star()
        topo.validate()
        lonely = Topology()
        lonely.add_host("n", HostRole.COMPUTE)
        with pytest.raises(TopologyError):
            lonely.validate()
