"""ASCII figure primitives."""

import pytest

from repro.errors import AnalysisError
from repro.figures.ascii import (
    bar_panel,
    box_panel,
    render_table,
    series_panel,
    timeline_panel,
)
from repro.stats.boxplot import boxplot_stats


class TestSeriesPanel:
    def test_contains_title_ticks_and_legend(self):
        text = series_panel(
            {"runs": [(1.0, [100.0, 110.0]), (2.0, [200.0])]},
            "my title",
            xlabel="nodes",
        )
        assert "my title" in text
        assert "nodes" in text
        assert "legend" in text
        assert "does not start at zero" in text

    def test_multiple_series_get_distinct_markers(self):
        text = series_panel(
            {"8 ppn": [(1.0, [10.0])], "16 ppn": [(1.0, [20.0])]},
            "t",
        )
        assert "o=8 ppn" in text and "x=16 ppn" in text

    def test_constant_data_does_not_crash(self):
        text = series_panel({"s": [(1.0, [5.0]), (2.0, [5.0])]}, "flat")
        assert "flat" in text

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            series_panel({}, "t")
        with pytest.raises(AnalysisError):
            series_panel({"s": []}, "t")


class TestBoxPanel:
    def test_renders_groups(self):
        boxes = {
            "(1,3)": boxplot_stats([1400, 1430, 1450, 1460]),
            "(3,3)": boxplot_stats([2100, 2120, 2130]),
        }
        text = box_panel(boxes, "Fig 8")
        assert "(1,3)" in text and "(3,3)" in text
        assert "median=1440" in text or "median=" in text
        assert text.count("\n") >= 4

    def test_outliers_marked(self):
        boxes = {"g": boxplot_stats([10, 11, 12, 13, 100])}
        assert "o" in box_panel(boxes, "t").split("\n")[1]

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            box_panel({}, "t")


class TestBarPanel:
    def test_stacked_totals(self):
        text = bar_panel(
            {"k=4 concurrent": [("app0", 2000.0), ("app1", 2100.0)], "k=4 single": [("single", 4000.0)]},
            "Fig 12",
        )
        assert "total=  4100.0" in text
        assert "app0" in text

    def test_empty_and_zero_rejected(self):
        with pytest.raises(AnalysisError):
            bar_panel({}, "t")
        with pytest.raises(AnalysisError):
            bar_panel({"a": [("x", 0.0)]}, "t")


class TestTimelinePanel:
    def test_step_rendering(self):
        text = timeline_panel(
            {"storage1": [(0.0, 1100.0), (7.4, 0.0)], "storage2": [(0.0, 1100.0), (22.3, 0.0)]},
            "Fig 9",
        )
        lines = text.split("\n")
        s1 = next(l for l in lines if "storage1" in l)
        s2 = next(l for l in lines if "storage2" in l)
        # storage1 goes idle earlier: fewer busy columns.
        assert s1.count("#") < s2.count("#")

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            timeline_panel({}, "t")


class TestTable:
    def test_alignment_and_rows(self):
        text = render_table(["a", "bb"], [[1, "xx"], [22, "y"]], "title")
        lines = text.split("\n")
        assert lines[0] == "title"
        assert "a " in lines[1] and "bb" in lines[1]
        assert len(lines) == 5  # title, header, separator, 2 rows

    def test_row_length_checked(self):
        with pytest.raises(AnalysisError):
            render_table(["a", "b"], [[1]])

    def test_headers_required(self):
        with pytest.raises(AnalysisError):
            render_table([], [])
