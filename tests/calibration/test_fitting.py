"""Calibration fitting and anchor checks."""

import numpy as np
import pytest

from repro.calibration.fitting import (
    AnchorCheck,
    anchor_report,
    check_anchors,
    fit_depth_constant,
)
from repro.calibration.plafrim import scenario1, scenario2
from repro.errors import AnalysisError


class TestFitDepthConstant:
    def test_recovers_known_constant(self):
        d0 = 12.5
        depths = np.array([2.0, 4.0, 8.0, 16.0, 32.0])
        frac = 1.0 - np.exp(-depths / d0)
        assert fit_depth_constant(depths, frac) == pytest.approx(d0, rel=1e-4)

    def test_robust_to_noise(self):
        rng = np.random.default_rng(0)
        d0 = 8.0
        depths = np.linspace(1, 40, 20)
        frac = np.clip(1.0 - np.exp(-depths / d0) + rng.normal(0, 0.01, 20), 0.01, 0.99)
        assert fit_depth_constant(depths, frac) == pytest.approx(d0, rel=0.15)

    def test_validation(self):
        with pytest.raises(AnalysisError):
            fit_depth_constant([1.0], [0.5])
        with pytest.raises(AnalysisError):
            fit_depth_constant([1.0, 2.0], [0.5, 1.0])  # fraction must be < 1
        with pytest.raises(AnalysisError):
            fit_depth_constant([0.0, 2.0], [0.5, 0.6])


class TestAnchors:
    def test_both_scenarios_within_tolerance(self):
        check_anchors(scenario1(), tolerance=0.10)
        check_anchors(scenario2(), tolerance=0.10)

    def test_report_contents(self):
        names = {c.name for c in anchor_report(scenario1())}
        assert any("balanced two-server peak" in n for n in names)
        names2 = {c.name for c in anchor_report(scenario2())}
        assert any("client ceiling (scenario 2" in n for n in names2)

    def test_anchor_check_math(self):
        check = AnchorCheck("x", paper_value=100.0, model_value=104.0)
        assert check.relative_error == pytest.approx(0.04)
        assert check.within(0.05)
        assert not check.within(0.03)

    def test_check_anchors_raises_when_off(self):
        from repro.storage.san import SanRampSpec

        bad = scenario1().with_overrides(san=SanRampSpec(base_mib_s=50_000.0))
        with pytest.raises(AnalysisError):
            check_anchors(bad, tolerance=0.10)
