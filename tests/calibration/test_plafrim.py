"""Calibration parameter sets."""

import math

import pytest

from repro.calibration.plafrim import SCENARIOS, scenario1, scenario2, scenario_by_name
from repro.errors import ConfigError
from repro.storage.variability import CompositeNoise


class TestScenarioFacts:
    def test_scenario1_is_network_bound(self):
        calib = scenario1()
        assert calib.network_bound
        assert calib.per_server_network_mib_s < calib.pool.aggregate_mib_s(1)

    def test_scenario2_is_storage_bound(self):
        calib = scenario2()
        assert not calib.network_bound
        assert calib.per_server_network_mib_s > calib.per_server_storage_mib_s

    def test_client_ceilings_match_paper(self):
        assert scenario1().client.node_capacity(8) == pytest.approx(880.0)
        assert scenario2().client.node_capacity(8) == pytest.approx(1630.0)

    def test_balanced_peak_scenario1(self):
        """Two saturated ingests ~ the paper's 2200 MiB/s peak."""
        assert 2 * scenario1().per_server_network_mib_s == pytest.approx(2200, rel=0.01)

    def test_pool_single_target_rate(self):
        assert scenario1().pool.aggregate_mib_s(1) == pytest.approx(1764.0)

    def test_scenarios_share_storage_model(self):
        """Same storage hardware behind both fabrics."""
        s1, s2 = scenario1(), scenario2()
        assert s1.pool == s2.pool
        assert s1.target == s2.target
        assert s1.san_mib_s == s2.san_mib_s

    def test_lookup(self):
        assert scenario_by_name("scenario1").name == "scenario1"
        assert set(SCENARIOS) == {"scenario1", "scenario2"}
        with pytest.raises(ConfigError):
            scenario_by_name("scenario3")


class TestFactories:
    def test_platform(self):
        topo = scenario1().platform(4)
        assert len(topo.compute_nodes()) == 4
        assert len(topo.storage_hosts()) == 2

    def test_deployment_defaults_size_only(self):
        spec = scenario1().deployment(stripe_count=6)
        assert spec.keep_data is False
        assert spec.default_config.stripe_count == 6

    def test_storage_hosts_match_deployment(self):
        calib = scenario2()
        deployment = calib.deployment()
        hosts = calib.storage_hosts(deployment)
        assert [h.host for h in hosts] == ["storage1", "storage2"]
        assert hosts[0].target_ids == (101, 102, 103, 104)

    def test_make_noise_fresh_instances(self):
        calib = scenario2()
        a, b = calib.make_noise(), calib.make_noise()
        assert isinstance(a, CompositeNoise)
        assert a is not b
        assert math.isfinite(a.epoch_length_s)

    def test_scenario1_has_network_noise(self):
        assert len(scenario1().make_noise().models) == 2  # storage + network
        assert len(scenario2().make_noise().models) == 1  # storage only

    def test_with_overrides(self):
        calib = scenario1().with_overrides(metadata_overhead_s=0.0)
        assert calib.metadata_overhead_s == 0.0
        assert calib.name == "scenario1"
