"""The simulation service and its content-addressed result cache.

The contract under test: a warm campaign executes zero engine runs yet
produces a byte-identical record store and replay fingerprint to the
cold one, serial and parallel; validated runs and ``cache=False``
always execute; corrupted or mismatched entries degrade to misses.
"""

from __future__ import annotations

import json

import pytest

from repro import service
from repro.engine.base import EngineOptions
from repro.methodology.plan import ExperimentSpec
from repro.scenario import ScenarioSpec
from repro.scenario.compile import compile_scenario
from repro.service import ResultCache, ServiceExecutor, get_service
from repro.experiments.common import run_specs, sweep
from repro.telemetry.bus import RingBufferSink, get_bus
from repro.verify.level import ValidationLevel
from repro.verify.replay import result_fingerprint


@pytest.fixture(autouse=True)
def _clean_stats():
    before = service.cache_stats()
    yield
    # Tests in this module may leave counters incremented; that is fine,
    # but make sure the tally only ever grows (no negative deltas).
    after = service.cache_stats()
    assert all(after[k] >= before[k] for k in before)


def _spec(**factors) -> ScenarioSpec:
    base = {"num_nodes": 2, "ppn": 4, "total_gib": 1, "stripe_count": 2}
    base.update(factors)
    return compile_scenario(ExperimentSpec("cachetest", "scenario1", base))


def _delta(before, after):
    return {k: after[k] - before[k] for k in after}


class TestResultCache:
    def test_miss_then_hit_byte_identical(self, tmp_path):
        spec = _spec()
        svc = get_service()
        before = service.cache_stats()
        cold = svc.run(spec, 0, cache_dir=tmp_path)
        warm = svc.run(spec, 0, cache_dir=tmp_path)
        stats = _delta(before, service.cache_stats())
        assert stats["miss"] == 1 and stats["hit"] == 1
        assert result_fingerprint(cold) == result_fingerprint(warm)

    def test_distinct_reps_distinct_entries(self, tmp_path):
        spec = _spec()
        svc = get_service()
        a = svc.run(spec, 0, cache_dir=tmp_path)
        b = svc.run(spec, 1, cache_dir=tmp_path)
        assert result_fingerprint(a) != result_fingerprint(b)
        assert len(ResultCache(tmp_path)) == 2

    def test_validation_bypasses_cache(self, tmp_path):
        spec = _spec().with_options(validation=ValidationLevel.BASIC)
        svc = get_service()
        before = service.cache_stats()
        svc.run(spec, 0, cache_dir=tmp_path)
        svc.run(spec, 0, cache_dir=tmp_path)
        stats = _delta(before, service.cache_stats())
        assert stats["bypassed"] == 2
        assert len(ResultCache(tmp_path)) == 0

    def test_cache_false_counts_uncached(self, tmp_path):
        spec = _spec()
        svc = get_service()
        before = service.cache_stats()
        svc.run(spec, 0, cache=False, cache_dir=tmp_path)
        stats = _delta(before, service.cache_stats())
        assert stats["uncached"] == 1
        assert len(ResultCache(tmp_path)) == 0

    def test_corrupted_entry_degrades_to_miss(self, tmp_path):
        spec = _spec()
        svc = get_service()
        cold = svc.run(spec, 0, cache_dir=tmp_path)
        path = ResultCache(tmp_path).path_for(spec, 0)
        path.write_text("{not json")
        # The hot tier would happily keep serving the pre-corruption
        # entry; drop it so the disk tier's handling is what's probed.
        svc.drop_memory_tiers(tmp_path)
        before = service.cache_stats()
        again = svc.run(spec, 0, cache_dir=tmp_path)
        stats = _delta(before, service.cache_stats())
        assert stats["miss"] == 1
        assert stats["corrupt"] == 1
        assert result_fingerprint(again) == result_fingerprint(cold)
        # The garbled file was quarantined, not left to fail every
        # future lookup — and the re-executed run re-stored the entry.
        assert path.with_name(path.name + ".corrupt").exists()
        assert path.exists()

    def test_entry_header_mismatch_degrades_to_miss(self, tmp_path):
        spec = _spec()
        svc = get_service()
        svc.run(spec, 0, cache_dir=tmp_path)
        path = ResultCache(tmp_path).path_for(spec, 0)
        entry = json.loads(path.read_text())
        entry["model_revision"] = 999
        path.write_text(json.dumps(entry))
        svc.drop_memory_tiers(tmp_path)
        before = service.cache_stats()
        svc.run(spec, 0, cache_dir=tmp_path)
        stats = _delta(before, service.cache_stats())
        assert stats["miss"] == 1
        # Decodable-but-wrong headers are not corruption: no quarantine.
        assert stats["corrupt"] == 0

    def test_hit_replays_engine_events(self, tmp_path):
        # A mid-run outage produces engine-level events (fault.trigger,
        # flow.retry); a healthy run emits none at info level.
        from repro.faults import FaultSchedule, target_outage

        spec = _spec(chooser="fixed:101,201", stripe_count=2).with_options(
            fault_schedule=FaultSchedule([target_outage(201, 0.1, 2.0)])
        )
        svc = get_service()
        bus = get_bus()
        cold_ring = bus.attach(RingBufferSink(4096))
        try:
            svc.run(spec, 0, cache_dir=tmp_path)
        finally:
            bus.detach(cold_ring)
        warm_ring = bus.attach(RingBufferSink(4096))
        try:
            svc.run(spec, 0, cache_dir=tmp_path)
        finally:
            bus.detach(warm_ring)
        cold_types = [e["event"] for e in cold_ring.events]
        warm_types = [e["event"] for e in warm_ring.events]
        assert cold_types and cold_types == warm_types

    def test_counters_reach_metrics_registry(self, tmp_path):
        spec = _spec(total_gib=2)
        bus = get_bus()
        ring = bus.attach(RingBufferSink(16))
        try:
            before = bus.metrics.counter("service.cache", status="miss").value
            get_service().run(spec, 0, cache_dir=tmp_path)
            after = bus.metrics.counter("service.cache", status="miss").value
        finally:
            bus.detach(ring)
        assert after == before + 1


class TestBulkLookup:
    """The bulk path (prefetch / run_many) is tally- and result-
    equivalent to probing the cache run by run — the parallel runner
    and the job server depend on this for ``service.cache`` parity."""

    def _jobs(self, reps=2):
        specs = (_spec(stripe_count=2), _spec(stripe_count=4))
        return [(spec, rep) for spec in specs for rep in range(reps)]

    def test_run_many_cold_then_warm_tallies(self, tmp_path):
        svc = get_service()
        jobs = self._jobs()
        before = service.cache_stats()
        cold = svc.run_many(jobs, cache_dir=tmp_path)
        assert _delta(before, service.cache_stats())["miss"] == 4
        before = service.cache_stats()
        warm = svc.run_many(jobs, cache_dir=tmp_path)
        stats = _delta(before, service.cache_stats())
        assert stats["hit"] == 4 and stats["miss"] == 0
        assert [result_fingerprint(r) for r in warm] == [
            result_fingerprint(r) for r in cold
        ]

    def test_run_many_mixed_matches_per_run(self, tmp_path):
        svc = get_service()
        jobs = self._jobs()
        for spec, rep in jobs[:2]:  # pre-warm half through the per-run path
            svc.run(spec, rep, cache_dir=tmp_path)
        before = service.cache_stats()
        bulk = svc.run_many(jobs, cache_dir=tmp_path)
        stats = _delta(before, service.cache_stats())
        assert stats["hit"] == 2 and stats["miss"] == 2
        per_run = [svc.run(spec, rep, cache_dir=tmp_path) for spec, rep in jobs]
        assert [result_fingerprint(r) for r in bulk] == [
            result_fingerprint(r) for r in per_run
        ]

    def test_prefetch_counts_nothing_until_resolved(self, tmp_path):
        svc = get_service()
        jobs = self._jobs(reps=1)
        for spec, rep in jobs:
            svc.run(spec, rep, cache_dir=tmp_path)
        before = service.cache_stats()
        entries = svc.prefetch(jobs, cache_dir=tmp_path)
        assert all(v == 0 for v in _delta(before, service.cache_stats()).values())
        assert len(entries) == 2
        before = service.cache_stats()
        for entry in entries.values():
            svc.resolve_prefetched(entry)
        # Exactly one hit per run, counted at resolve time, never per batch.
        assert _delta(before, service.cache_stats())["hit"] == 2


class TestServiceExecutor:
    def test_unknown_plan_key_rejected(self):
        from repro.errors import ExperimentError

        executor = ServiceExecutor(scenarios={})
        with pytest.raises(ExperimentError):
            executor(ExperimentSpec("e", "scenario1", {"num_nodes": 2}), 0)


class TestCampaignEquivalence:
    def _specs(self):
        return sweep(
            "cachecamp",
            scenario="scenario1",
            stripe_count=(2, 4),
            num_nodes=2,
            ppn=4,
            total_gib=1,
        )

    def test_cold_warm_serial_byte_identical(self, tmp_path):
        cache = tmp_path / "cache"
        before = service.cache_stats()
        cold = run_specs(self._specs(), repetitions=3, seed=0, cache_dir=cache)
        warm = run_specs(self._specs(), repetitions=3, seed=0, cache_dir=cache)
        stats = _delta(before, service.cache_stats())
        assert stats["miss"] == 6 and stats["hit"] == 6
        cold_csv, warm_csv = tmp_path / "cold.csv", tmp_path / "warm.csv"
        cold.write_csv(cold_csv)
        warm.write_csv(warm_csv)
        assert cold_csv.read_bytes() == warm_csv.read_bytes()

    def test_warm_parallel_matches_cold_serial(self, tmp_path):
        cache = tmp_path / "cache"
        cold = run_specs(self._specs(), repetitions=2, seed=0, cache_dir=cache)
        before = service.cache_stats()
        warm = run_specs(self._specs(), repetitions=2, seed=0, cache_dir=cache, workers=2)
        stats = _delta(before, service.cache_stats())
        assert stats["hit"] == 4 and stats["miss"] == 0
        cold_csv, warm_csv = tmp_path / "cold.csv", tmp_path / "warm.csv"
        cold.write_csv(cold_csv)
        warm.write_csv(warm_csv)
        assert cold_csv.read_bytes() == warm_csv.read_bytes()

    def test_no_cache_campaign_executes(self, tmp_path):
        cache = tmp_path / "cache"
        before = service.cache_stats()
        run_specs(self._specs(), repetitions=1, seed=0, cache=False, cache_dir=cache)
        stats = _delta(before, service.cache_stats())
        assert stats["uncached"] == 2 and stats["miss"] == 0
        assert len(ResultCache(cache)) == 0


class TestSweep:
    def test_scalar_axes_fixed(self):
        specs = sweep("e", scenario="scenario1", stripe_count=4, num_nodes=8)
        assert len(specs) == 1
        assert specs[0].factors == {"stripe_count": 4, "num_nodes": 8}

    def test_list_axes_crossed_leftmost_outermost(self):
        specs = sweep("e", scenario="scenario1", a=(1, 2), b=(10, 20))
        combos = [(s.factors["a"], s.factors["b"]) for s in specs]
        assert combos == [(1, 10), (1, 20), (2, 10), (2, 20)]

    def test_mapping_axes_resolved_per_scenario(self):
        specs = sweep(
            "e",
            scenario=("scenario1", "scenario2"),
            num_nodes={"scenario1": (1, 2), "scenario2": (4,)},
        )
        by_scenario = {}
        for s in specs:
            by_scenario.setdefault(s.scenario, []).append(s.factors["num_nodes"])
        assert by_scenario == {"scenario1": [1, 2], "scenario2": [4]}

    def test_mapping_missing_scenario_rejected(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            sweep("e", scenario="scenario9", num_nodes={"scenario1": 2})

    def test_no_scenarios_rejected(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            sweep("e", scenario=())


class TestCacheGC:
    def populate(self, tmp_path, reps=4):
        spec = _spec()
        svc = get_service()
        for rep in range(reps):
            svc.run(spec, rep, cache_dir=tmp_path)
        return sorted((tmp_path).glob("*/*/*.json"))

    def test_evicts_oldest_mtime_first(self, tmp_path):
        import os

        entries = self.populate(tmp_path)
        assert len(entries) == 4
        # Age the first two entries; they must be the eviction victims.
        for i, path in enumerate(entries):
            os.utime(path, (1000.0 + i, 1000.0 + i))
        keep = sum(p.stat().st_size for p in entries[2:])
        summary = ResultCache(tmp_path).gc(keep)
        assert summary["evicted"] == 2
        assert summary["remaining_bytes"] == keep
        survivors = sorted(tmp_path.glob("*/*/*.json"))
        assert survivors == entries[2:]

    def test_zero_budget_clears_cache_and_prunes_dirs(self, tmp_path):
        self.populate(tmp_path)
        summary = ResultCache(tmp_path).gc(0)
        assert summary["remaining_bytes"] == 0
        assert list(tmp_path.glob("*/*/*.json")) == []
        assert list(tmp_path.glob("*")) == []  # fingerprint dirs pruned

    def test_large_budget_evicts_nothing(self, tmp_path):
        entries = self.populate(tmp_path)
        summary = ResultCache(tmp_path).gc(10**12)
        assert summary["evicted"] == 0
        assert sorted(tmp_path.glob("*/*/*.json")) == entries

    def test_negative_budget_rejected(self, tmp_path):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            ResultCache(tmp_path).gc(-1)

    def test_dry_run_deletes_nothing(self, tmp_path):
        entries = self.populate(tmp_path)
        total = sum(p.stat().st_size for p in entries)
        summary = ResultCache(tmp_path).gc(0, dry_run=True)
        assert summary["dry_run"] is True
        assert summary["evicted"] == 4
        assert summary["freed_bytes"] == total
        assert summary["remaining_bytes"] == 0
        # ... but every entry is still on disk.
        assert sorted(tmp_path.glob("*/*/*.json")) == entries

    def test_dry_run_predicts_real_pass(self, tmp_path):
        import os

        entries = self.populate(tmp_path)
        for i, path in enumerate(entries):
            os.utime(path, (1000.0 + i, 1000.0 + i))
        keep = sum(p.stat().st_size for p in entries[2:])
        predicted = ResultCache(tmp_path).gc(keep, dry_run=True)
        actual = ResultCache(tmp_path).gc(keep)
        assert predicted["evicted"] == actual["evicted"]
        assert predicted["freed_bytes"] == actual["freed_bytes"]
        assert predicted["remaining_bytes"] == actual["remaining_bytes"]

    def test_dry_run_emits_no_event(self, tmp_path):
        self.populate(tmp_path)
        bus = get_bus()
        ring = RingBufferSink(256)
        bus.attach(ring)
        try:
            ResultCache(tmp_path).gc(0, dry_run=True)
        finally:
            bus.detach(ring)
        assert [e for e in ring.events if e["event"] == "cache.gc"] == []

    def test_eviction_counter_and_event(self, tmp_path):
        self.populate(tmp_path)
        bus = get_bus()
        ring = RingBufferSink(256)
        bus.attach(ring)
        try:
            ResultCache(tmp_path).gc(0)
        finally:
            bus.detach(ring)
        gc_events = [e for e in ring.events if e["event"] == "cache.gc"]
        assert len(gc_events) == 1
        assert gc_events[0]["evicted"] == 4
        assert bus.metrics.counter("service.cache.evicted").value >= 4
