"""The scenario IR: canonical form, fingerprint stability, JSON round-trips.

The fingerprint is the result cache's key, so these are property tests:
any instability (factor-order dependence, float drift through JSON, a
behaviour field the digest misses) silently corrupts or splits the
cache.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.base import EngineOptions
from repro.errors import ConfigError
from repro.faults import FaultSchedule, target_outage
from repro.scenario import ScenarioSpec, canonical_json, fingerprint_of
from repro.verify.level import ValidationLevel

factor_names = st.sampled_from(
    ["num_nodes", "ppn", "total_gib", "stripe_count", "chooser", "transfer_mib", "extra"]
)
factor_values = st.one_of(
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=12),
    st.booleans(),
)
factor_dicts = st.dictionaries(factor_names, factor_values, max_size=5)


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    @given(factor_dicts)
    def test_fingerprint_is_sha256_of_canonical_json(self, factors):
        import hashlib

        expected = hashlib.sha256(canonical_json(factors).encode()).hexdigest()
        assert fingerprint_of(factors) == expected


class TestFingerprintProperties:
    @given(factor_dicts)
    @settings(max_examples=50)
    def test_factor_order_invariance(self, factors):
        forward = ScenarioSpec("e", "scenario1", factors)
        reversed_ = ScenarioSpec("e", "scenario1", dict(reversed(list(factors.items()))))
        assert forward.fingerprint == reversed_.fingerprint

    @given(factor_dicts)
    @settings(max_examples=50)
    def test_json_round_trip_preserves_fingerprint(self, factors):
        spec = ScenarioSpec("e", "scenario1", factors)
        restored = ScenarioSpec.from_jsonable(json.loads(json.dumps(spec.to_jsonable())))
        assert restored == spec
        assert restored.fingerprint == spec.fingerprint

    def test_exp_id_excluded(self):
        a = ScenarioSpec("fig4", "scenario1", {"num_nodes": 4})
        b = ScenarioSpec("fig5", "scenario1", {"num_nodes": 4})
        assert a.fingerprint == b.fingerprint

    def test_engine_excluded(self):
        a = ScenarioSpec("e", "scenario1", {}, engine="fluid")
        b = ScenarioSpec("e", "scenario1", {}, engine="des")
        assert a.fingerprint == b.fingerprint

    def test_validation_level_excluded(self):
        a = ScenarioSpec("e", "scenario1", {})
        b = ScenarioSpec(
            "e", "scenario1", {}, options=EngineOptions(validation=ValidationLevel.PARANOID)
        )
        assert a.fingerprint == b.fingerprint

    @pytest.mark.parametrize(
        "changed",
        [
            ScenarioSpec("e", "scenario2", {"num_nodes": 4}),
            ScenarioSpec("e", "scenario1", {"num_nodes": 8}),
            ScenarioSpec("e", "scenario1", {"num_nodes": 4}, seed=1),
            ScenarioSpec("e", "scenario1", {"num_nodes": 4}, max_nodes=16),
            ScenarioSpec("e", "scenario1", {"num_nodes": 4}, builder="scaleout"),
            ScenarioSpec(
                "e",
                "scenario1",
                {"num_nodes": 4},
                options=EngineOptions(noise_enabled=False),
            ),
            ScenarioSpec(
                "e",
                "scenario1",
                {"num_nodes": 4},
                options=EngineOptions(
                    fault_schedule=FaultSchedule([target_outage(201, 1.0)])
                ),
            ),
        ],
    )
    def test_behavior_fields_change_fingerprint(self, changed):
        base = ScenarioSpec("e", "scenario1", {"num_nodes": 4})
        assert changed.fingerprint != base.fingerprint

    def test_numpy_factor_values_normalize(self):
        np = pytest.importorskip("numpy")
        a = ScenarioSpec("e", "scenario1", {"num_nodes": np.int64(4)})
        b = ScenarioSpec("e", "scenario1", {"num_nodes": 4})
        assert a.fingerprint == b.fingerprint

    def test_unrepresentable_factor_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioSpec("e", "scenario1", {"bad": object()})

    def test_duplicate_factor_names_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioSpec("e", "scenario1", (("a", 1), ("a", 2)))

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            ScenarioSpec("e", "scenario1", {}, engine="quantum")


class TestProcessBoundary:
    def test_fingerprint_stable_across_processes(self):
        """The digest must not depend on this process (hash seed, dict order)."""
        spec = ScenarioSpec(
            "e",
            "scenario1",
            {"num_nodes": 8, "ppn": 8, "total_gib": 32.0, "chooser": "balanced"},
            seed=3,
            options=EngineOptions(fault_schedule=FaultSchedule([target_outage(201, 0.0)])),
        )
        src = Path(__file__).resolve().parents[2] / "src"
        code = (
            "import json, sys\n"
            "from repro.scenario import ScenarioSpec\n"
            "spec = ScenarioSpec.from_jsonable(json.loads(sys.argv[1]))\n"
            "print(spec.fingerprint)\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code, json.dumps(spec.to_jsonable())],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(src), "PYTHONHASHSEED": "12345"},
        )
        assert out.stdout.strip() == spec.fingerprint
