"""Management service: registry and capacity accounting."""

import pytest

from repro.beegfs.management import ManagementService, TargetInfo, TargetState
from repro.errors import EntityExistsError, NoSuchEntityError, StorageError


def build_ms():
    ms = ManagementService()
    ms.register_server("storage1")
    ms.register_server("storage2")
    for tid in (101, 102):
        ms.register_target(tid, "storage1", 1000)
    for tid in (201, 202):
        ms.register_target(tid, "storage2", 1000)
    return ms


class TestRegistration:
    def test_duplicate_server(self):
        ms = build_ms()
        with pytest.raises(EntityExistsError):
            ms.register_server("storage1")

    def test_duplicate_target(self):
        ms = build_ms()
        with pytest.raises(EntityExistsError):
            ms.register_target(101, "storage2", 1000)

    def test_target_on_unknown_server(self):
        with pytest.raises(NoSuchEntityError):
            ManagementService().register_target(1, "ghost", 1000)

    def test_target_info_validation(self):
        with pytest.raises(StorageError):
            TargetInfo(-1, "s", 1000)
        with pytest.raises(StorageError):
            TargetInfo(1, "s", 0)


class TestQueries:
    def test_targets_in_registration_order(self):
        ms = build_ms()
        assert [t.target_id for t in ms.targets()] == [101, 102, 201, 202]
        assert [t.target_id for t in ms.targets("storage2")] == [201, 202]

    def test_server_of(self):
        ms = build_ms()
        assert ms.server_of(102) == "storage1"
        with pytest.raises(NoSuchEntityError):
            ms.server_of(999)

    def test_online_filter(self):
        ms = build_ms()
        ms.set_state(101, TargetState.OFFLINE)
        assert [t.target_id for t in ms.targets(online_only=True)] == [102, 201, 202]
        assert 101 in ms.target_ids()
        assert 101 not in ms.target_ids(online_only=True)

    def test_total_capacity(self):
        assert build_ms().total_capacity_bytes() == 4000

    def test_placement_of(self):
        ms = build_ms()
        assert ms.placement_of((101, 201, 202)) == {"storage1": 1, "storage2": 2}


class TestAccounting:
    def test_consume_and_free(self):
        ms = build_ms()
        ms.consume(101, 600)
        assert ms.target(101).free_bytes == 400
        ms.consume(101, -600)
        assert ms.target(101).free_bytes == 1000

    def test_out_of_space(self):
        ms = build_ms()
        with pytest.raises(StorageError):
            ms.consume(101, 1001)

    def test_free_more_than_used(self):
        ms = build_ms()
        with pytest.raises(StorageError):
            ms.consume(101, -1)
