"""The POSIX-like client."""

import pytest

from repro.beegfs.client import BeeGFSClient
from repro.errors import BeeGFSError, NoSuchEntityError
from repro.units import KiB


@pytest.fixture
def client(fs):
    return BeeGFSClient(fs, node="bora001")


class TestNamespaceOps:
    def test_mkdir_listdir(self, client):
        client.mkdir("/data")
        assert client.listdir("/") == ["data"]
        assert client.exists("/data")

    def test_stat(self, client):
        handle = client.create("/f")
        handle.pwrite(0, b"abc")
        assert client.stat("/f").size == 3

    def test_unlink(self, client):
        client.create("/f").close()
        client.unlink("/f")
        assert not client.exists("/f")


class TestOpenModes:
    def test_create_is_exclusive(self, client):
        client.create("/f").close()
        with pytest.raises(Exception):
            client.create("/f")

    def test_open_missing(self, client):
        with pytest.raises(NoSuchEntityError):
            client.open("/missing")

    def test_open_create_flag(self, client):
        handle = client.open("/new", write=True, create=True)
        assert handle.writable
        handle.close()
        reopened = client.open("/new")
        assert not reopened.writable

    def test_readonly_write_rejected(self, client):
        client.create("/f").close()
        handle = client.open("/f")
        with pytest.raises(BeeGFSError):
            handle.pwrite(0, b"x")


class TestHandleIO:
    def test_cursor_semantics(self, client):
        with client.create("/f") as handle:
            handle.write(b"hello ")
            handle.write(b"world")
            handle.seek(0)
            assert handle.read(11) == b"hello world"
            assert handle.pos == 11

    def test_pwrite_does_not_move_cursor(self, client):
        handle = client.create("/f")
        handle.pwrite(100, b"x")
        assert handle.pos == 0

    def test_length_only_write(self, client):
        handle = client.create("/f")
        assert handle.pwrite(0, length=2 * KiB) == 2 * KiB
        assert handle.fstat().size == 2 * KiB

    def test_zero_length_write(self, client):
        handle = client.create("/f")
        assert handle.pwrite(0, b"") == 0

    def test_conflicting_args(self, client):
        handle = client.create("/f")
        with pytest.raises(BeeGFSError):
            handle.pwrite(0, b"abc", length=5)
        with pytest.raises(BeeGFSError):
            handle.pwrite(0)

    def test_closed_handle_rejected(self, client):
        handle = client.create("/f")
        handle.close()
        with pytest.raises(BeeGFSError):
            handle.pwrite(0, b"x")
        with pytest.raises(BeeGFSError):
            handle.pread(0, 1)

    def test_negative_seek(self, client):
        handle = client.create("/f")
        with pytest.raises(BeeGFSError):
            handle.seek(-1)

    def test_context_manager_closes(self, client):
        with client.create("/f") as handle:
            pass
        assert handle.closed
