"""Target choosers: the allocation heuristics of Section IV-C."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beegfs.choosers import (
    BalancedChooser,
    CapacityChooser,
    FailoverChooser,
    FixedChooser,
    RandomChooser,
    RoundRobinChooser,
    chooser_from_name,
)
from repro.beegfs.filesystem import PLAFRIM_TARGET_ORDERING
from repro.beegfs.management import TargetInfo
from repro.errors import InsufficientTargetsError, TargetChooserError


def plafrim_pool():
    infos = []
    for tid in (101, 102, 103, 104):
        infos.append(TargetInfo(tid, "storage1", 10**12))
    for tid in (201, 202, 203, 204):
        infos.append(TargetInfo(tid, "storage2", 10**12))
    return infos


def placement(picked, pool):
    server_of = {t.target_id: t.server for t in pool}
    counts = Counter(server_of[t] for t in picked)
    return tuple(sorted((counts.get("storage1", 0), counts.get("storage2", 0))))


def rng(seed=0):
    return np.random.default_rng(seed)


class TestRoundRobin:
    def test_paper_stripe4_windows(self):
        """Stripe count 4 yields exactly the two windows the paper saw."""
        seen = set()
        for seed in range(50):
            chooser = RoundRobinChooser(ordering=PLAFRIM_TARGET_ORDERING)
            seen.add(chooser.choose(plafrim_pool(), 4, rng(seed)))
        assert seen == {(101, 201, 202, 203), (204, 102, 103, 104)}

    def test_stripe4_always_1_3(self):
        pool = plafrim_pool()
        for seed in range(30):
            chooser = RoundRobinChooser(ordering=PLAFRIM_TARGET_ORDERING)
            assert placement(chooser.choose(pool, 4, rng(seed)), pool) == (1, 3)

    @pytest.mark.parametrize(
        "count,expected",
        [
            (1, {(0, 1)}),
            (2, {(1, 1), (0, 2)}),
            (3, {(1, 2), (0, 3)}),
            (5, {(1, 4), (2, 3)}),
            (6, {(2, 4), (3, 3)}),
            (7, {(3, 4)}),
            (8, {(4, 4)}),
        ],
    )
    def test_placement_modes_per_count(self, count, expected):
        """Bi-modality for 2/3/5/6, determinism for 1/7/8 (Fig 6a)."""
        pool = plafrim_pool()
        seen = set()
        for seed in range(80):
            chooser = RoundRobinChooser(ordering=PLAFRIM_TARGET_ORDERING)
            seen.add(placement(chooser.choose(pool, count, rng(seed)), pool))
        assert seen == expected

    def test_cursor_advances_by_count(self):
        chooser = RoundRobinChooser(ordering=PLAFRIM_TARGET_ORDERING, randomize_start=False)
        first = chooser.choose(plafrim_pool(), 4, rng())
        second = chooser.choose(plafrim_pool(), 4, rng())
        assert first == (101, 201, 202, 203)
        assert second == (204, 102, 103, 104)
        assert set(first).isdisjoint(second)

    def test_reset(self):
        chooser = RoundRobinChooser(ordering=PLAFRIM_TARGET_ORDERING, randomize_start=False)
        first = chooser.choose(plafrim_pool(), 4, rng())
        chooser.reset(0)
        assert chooser.choose(plafrim_pool(), 4, rng()) == first

    def test_default_ordering_is_pool_order(self):
        chooser = RoundRobinChooser(randomize_start=False)
        picked = chooser.choose(plafrim_pool(), 3, rng())
        assert picked == (101, 102, 103)

    def test_missing_target_in_ordering(self):
        chooser = RoundRobinChooser(ordering=(101, 102))
        with pytest.raises(TargetChooserError):
            chooser.choose(plafrim_pool(), 2, rng())

    def test_duplicate_ordering_rejected(self):
        with pytest.raises(TargetChooserError):
            RoundRobinChooser(ordering=(101, 101))


class TestRandom:
    def test_no_duplicates_and_valid(self):
        pool = plafrim_pool()
        for seed in range(20):
            picked = RandomChooser().choose(pool, 5, rng(seed))
            assert len(set(picked)) == 5
            assert set(picked) <= {t.target_id for t in pool}

    def test_all_placements_reachable_for_4(self):
        """Random selection can produce (2,2) — the paper's point about
        what PlaFRIM's round-robin forfeits."""
        pool = plafrim_pool()
        seen = {placement(RandomChooser().choose(pool, 4, rng(s)), pool) for s in range(300)}
        assert (2, 2) in seen
        assert (1, 3) in seen
        assert (0, 4) in seen

    def test_deterministic_given_rng(self):
        pool = plafrim_pool()
        assert RandomChooser().choose(pool, 4, rng(5)) == RandomChooser().choose(pool, 4, rng(5))


class TestBalanced:
    @pytest.mark.parametrize("count,expected", [(2, (1, 1)), (4, (2, 2)), (6, (3, 3)), (8, (4, 4))])
    def test_even_counts_balanced(self, count, expected):
        pool = plafrim_pool()
        for seed in range(20):
            picked = BalancedChooser().choose(pool, count, rng(seed))
            assert placement(picked, pool) == expected

    def test_odd_counts_off_by_one(self):
        pool = plafrim_pool()
        for count in (1, 3, 5, 7):
            picked = BalancedChooser().choose(pool, count, rng(count))
            lo, hi = placement(picked, pool)
            assert hi - lo == 1

    def test_randomises_within_server(self):
        pool = plafrim_pool()
        picks = {BalancedChooser().choose(pool, 2, rng(s)) for s in range(40)}
        assert len(picks) > 3


class TestCapacity:
    def test_prefers_free_targets(self):
        pool = plafrim_pool()
        for t in pool:
            if t.target_id != 104:
                t.used_bytes = int(t.capacity_bytes * 0.99)
        hits = sum(
            104 in CapacityChooser().choose(pool, 2, rng(s)) for s in range(200)
        )
        assert hits > 180

    def test_handles_all_full(self):
        pool = plafrim_pool()
        for t in pool:
            t.used_bytes = t.capacity_bytes
        picked = CapacityChooser().choose(pool, 3, rng())
        assert len(set(picked)) == 3


class TestFixed:
    def test_returns_exactly_fixed(self):
        chooser = FixedChooser((202, 203))
        assert chooser.choose(plafrim_pool(), 2, rng()) == (202, 203)

    def test_count_mismatch(self):
        with pytest.raises(TargetChooserError):
            FixedChooser((202, 203)).choose(plafrim_pool(), 3, rng())

    def test_unknown_target(self):
        with pytest.raises(TargetChooserError):
            FixedChooser((999,)).choose(plafrim_pool(), 1, rng())


class TestCommon:
    @pytest.mark.parametrize("name", ["random", "roundrobin", "balanced", "capacity"])
    def test_factory(self, name):
        assert chooser_from_name(name).name == name

    def test_factory_unknown(self):
        with pytest.raises(TargetChooserError):
            chooser_from_name("bogus")

    @pytest.mark.parametrize("chooser", [RandomChooser(), BalancedChooser(), CapacityChooser()])
    def test_count_bounds(self, chooser):
        pool = plafrim_pool()
        with pytest.raises(TargetChooserError):
            chooser.choose(pool, 0, rng())
        with pytest.raises(TargetChooserError):
            chooser.choose(pool, 9, rng())

    @given(count=st.integers(1, 8), seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_all_choosers_return_valid_subsets(self, count, seed):
        pool = plafrim_pool()
        ids = {t.target_id for t in pool}
        for chooser in (
            RandomChooser(),
            RoundRobinChooser(ordering=PLAFRIM_TARGET_ORDERING),
            BalancedChooser(),
            CapacityChooser(),
        ):
            picked = chooser.choose(pool, count, rng(seed))
            assert len(picked) == count
            assert len(set(picked)) == count
            assert set(picked) <= ids


def all_choosers():
    return (
        RandomChooser(),
        RoundRobinChooser(ordering=PLAFRIM_TARGET_ORDERING),
        BalancedChooser(),
        CapacityChooser(),
        FailoverChooser(),
    )


class TestFailover:
    def test_factory(self):
        assert chooser_from_name("failover").name == "failover"

    def test_balances_full_pool(self):
        chooser = FailoverChooser()
        picked = chooser.choose(plafrim_pool(), 4, rng())
        assert placement(picked, plafrim_pool()) == (2, 2)

    def test_deterministic(self):
        pool = plafrim_pool()
        first = FailoverChooser().choose(pool, 4, rng(0))
        second = FailoverChooser().choose(pool, 4, rng(99))
        assert first == second

    def test_rebalances_around_missing_target(self):
        """With 201 gone, failover still spreads 4 targets (2, 2)."""
        pool = [t for t in plafrim_pool() if t.target_id != 201]
        picked = FailoverChooser().choose(pool, 4, rng())
        assert placement(picked, plafrim_pool()) == (2, 2)
        assert 201 not in picked

    def test_prefers_least_used_targets(self):
        pool = plafrim_pool()
        pool[0] = TargetInfo(101, "storage1", 10**12, used_bytes=10**9)
        picked = FailoverChooser().choose(pool, 2, rng())
        assert 101 not in picked

    def test_drains_unbalanced_pools(self):
        """All but one target on one server: take what exists."""
        pool = [t for t in plafrim_pool() if t.server == "storage1" or t.target_id == 201]
        picked = FailoverChooser().choose(pool, 5, rng())
        assert set(picked) == {101, 102, 103, 104, 201}


class TestDegradedPools:
    """Edge cases every chooser must survive when targets fail."""

    @pytest.mark.parametrize("chooser", all_choosers(), ids=lambda c: c.name)
    def test_count_above_pool_raises_insufficient(self, chooser):
        pool = plafrim_pool()[:3]
        with pytest.raises(InsufficientTargetsError) as exc_info:
            chooser.choose(pool, 4, rng())
        exc = exc_info.value
        assert exc.requested == 4
        assert exc.available == 3
        assert sorted(exc.pool_ids) == [101, 102, 103]

    def test_insufficient_is_a_chooser_error(self):
        """Existing except TargetChooserError handlers keep working."""
        assert issubclass(InsufficientTargetsError, TargetChooserError)

    @pytest.mark.parametrize("chooser", all_choosers(), ids=lambda c: c.name)
    def test_empty_pool_raises(self, chooser):
        with pytest.raises(TargetChooserError):
            chooser.choose([], 1, rng())

    @pytest.mark.parametrize("chooser", all_choosers(), ids=lambda c: c.name)
    def test_all_targets_on_one_server(self, chooser):
        """A whole-server loss leaves a one-server pool; allocation works."""
        pool = [t for t in plafrim_pool() if t.server == "storage1"]
        picked = chooser.choose(pool, 4, rng())
        assert sorted(picked) == [101, 102, 103, 104]

    @pytest.mark.parametrize("chooser", all_choosers(), ids=lambda c: c.name)
    def test_single_survivor(self, chooser):
        pool = [t for t in plafrim_pool() if t.target_id == 204]
        assert chooser.choose(pool, 1, rng()) == (204,)
