"""The assembled BeeGFS: deployment, creation path, data path, admin ops."""

import pytest

from repro.beegfs.filesystem import BeeGFS, BeeGFSDeploymentSpec, plafrim_deployment
from repro.beegfs.meta import DirectoryConfig
from repro.errors import ConfigError, TargetChooserError
from repro.units import KiB, MiB, TiB


class TestDeploymentSpec:
    def test_plafrim_layout(self):
        spec = plafrim_deployment()
        assert spec.all_target_ids == (101, 102, 103, 104, 201, 202, 203, 204)
        assert spec.num_targets == 8
        assert spec.server_of(203) == "storage2"
        assert spec.default_config.stripe_count == 4
        assert spec.default_chooser == "roundrobin"

    def test_duplicate_targets_rejected(self):
        with pytest.raises(ConfigError):
            BeeGFSDeploymentSpec(servers=(("a", (1, 2)), ("b", (2, 3))))

    def test_ordering_must_cover_targets(self):
        with pytest.raises(ConfigError):
            BeeGFSDeploymentSpec(servers=(("a", (1, 2)),), target_ordering=(1, 2, 3))


class TestCreationPath:
    def test_create_uses_directory_config(self, fs):
        fs.mkdir("/two", DirectoryConfig(stripe_count=2))
        inode = fs.create_file("/two/f.dat")
        assert inode.pattern.stripe_count == 2

    def test_stripe_count_clamped_to_pool(self):
        spec = plafrim_deployment(stripe_count=8)
        fs = BeeGFS(spec, seed=0)
        fs.set_pattern("/", stripe_count=64)
        inode = fs.create_file("/f")
        assert inode.pattern.stripe_count == 8

    def test_placement_of(self, fs):
        inode = fs.create_file("/f")
        placement = fs.placement_of(inode)
        assert sorted(placement.values()) == [1, 3]  # PlaFRIM's stripe 4

    def test_set_pattern_affects_new_files_only(self, fs):
        before = fs.create_file("/before")
        fs.set_pattern("/", stripe_count=8)
        after = fs.create_file("/after")
        assert before.pattern.stripe_count == 4
        assert after.pattern.stripe_count == 8

    def test_set_pattern_chunk_size(self, fs):
        fs.mkdir("/big")
        fs.set_pattern("/big", chunk_size=MiB)
        assert fs.create_file("/big/f").pattern.chunk_size == MiB

    def test_fixed_chooser_via_config(self, fs):
        fs.mkdir("/pinned")
        fs.set_pattern("/pinned", stripe_count=2, chooser="fixed:202,203")
        inode = fs.create_file("/pinned/f")
        assert inode.pattern.targets == (202, 203)

    def test_fixed_chooser_count_mismatch(self, fs):
        fs.mkdir("/pinned")
        fs.set_pattern("/pinned", stripe_count=3, chooser="fixed:202,203")
        with pytest.raises(TargetChooserError):
            fs.create_file("/pinned/f")

    def test_chooser_instances_cached(self, fs):
        assert fs.chooser("roundrobin") is fs.chooser("roundrobin")

    def test_reproducible_with_seed(self):
        spec = plafrim_deployment(keep_data=False)
        t1 = BeeGFS(spec, seed=33).create_file("/f").pattern.targets
        t2 = BeeGFS(spec, seed=33).create_file("/f").pattern.targets
        assert t1 == t2


class TestDataPath:
    def test_write_read_through_stripes(self, fs):
        inode = fs.create_file("/f")
        payload = bytes(range(256)) * 8 * KiB  # 2 MiB, crosses chunks
        fs.write_extents(inode, 0, payload, len(payload))
        assert fs.read_extents(inode, 0, len(payload)) == payload
        assert inode.size == len(payload)

    def test_offset_write(self, fs):
        inode = fs.create_file("/f")
        fs.write_extents(inode, 600 * KiB, b"mark", 4)
        back = fs.read_extents(inode, 600 * KiB - 2, 8)
        assert back == b"\x00\x00mark\x00\x00"

    def test_chunk_accounting_matches_striping(self, fs):
        inode = fs.create_file("/f")
        size = 5 * 512 * KiB
        fs.write_extents(inode, 0, None, size)
        by_target = inode.pattern.bytes_per_target(size)
        for tid, expected in by_target.items():
            host = fs.management.server_of(tid)
            assert fs.oss[host].target(tid).store.chunk_file_size(inode.inode_id) >= 0
            assert fs.management.target(tid).used_bytes == by_target[tid] if expected else True

    def test_df_reflects_usage(self, fs):
        inode = fs.create_file("/f")
        fs.write_extents(inode, 0, None, 4 * 512 * KiB)
        used = {t.target_id: t.used_bytes for t in fs.df()}
        assert sum(used.values()) == 4 * 512 * KiB
        assert all(used[tid] == 512 * KiB for tid in inode.pattern.targets)

    def test_unlink_frees_space(self, fs):
        fs.create_file("/f")
        inode = fs.namespace.file("/f")
        fs.write_extents(inode, 0, None, MiB)
        fs.unlink("/f")
        assert all(t.used_bytes == 0 for t in fs.df())
        assert not fs.namespace.exists("/f")

    def test_size_only_deployment(self):
        fs = BeeGFS(plafrim_deployment(keep_data=False), seed=0)
        inode = fs.create_file("/f")
        fs.write_extents(inode, 0, None, 10 * MiB)
        assert inode.size == 10 * MiB
        assert sum(t.used_bytes for t in fs.df()) == 10 * MiB
