"""OSS/OST services."""

import pytest

from repro.beegfs.management import ManagementService
from repro.beegfs.storage_service import ObjectStorageServer, ObjectStorageTarget
from repro.errors import NoSuchEntityError, StorageError


def build_oss():
    ms = ManagementService()
    ms.register_server("storage1")
    oss = ObjectStorageServer("storage1", ms)
    oss.add_target(101, 10_000)
    oss.add_target(102, 10_000)
    return oss, ms


class TestTargets:
    def test_add_registers_with_ms(self):
        oss, ms = build_oss()
        assert ms.target_ids() == [101, 102]
        assert oss.target_ids() == [101, 102]

    def test_duplicate_target(self):
        oss, _ = build_oss()
        with pytest.raises(StorageError):
            oss.add_target(101, 10_000)

    def test_unknown_target(self):
        oss, _ = build_oss()
        with pytest.raises(NoSuchEntityError):
            oss.target(999)

    def test_mismatched_store_rejected(self):
        from repro.beegfs.chunks import ChunkStore

        with pytest.raises(StorageError):
            ObjectStorageTarget(target_id=1, store=ChunkStore(target_id=2))


class TestDataPath:
    def test_write_updates_accounting(self):
        oss, ms = build_oss()
        oss.write_chunk(101, inode_id=1, chunk_file_offset=0, data=b"abcd", length=4)
        assert ms.target(101).used_bytes == 4
        assert oss.bytes_written == 4

    def test_overwrite_does_not_double_count(self):
        oss, ms = build_oss()
        oss.write_chunk(101, 1, 0, b"abcd", 4)
        oss.write_chunk(101, 1, 0, b"efgh", 4)
        assert ms.target(101).used_bytes == 4
        assert oss.bytes_written == 8

    def test_read_chunk(self):
        oss, _ = build_oss()
        oss.write_chunk(101, 1, 0, b"data", 4)
        assert oss.read_chunk(101, 1, 0, 4) == b"data"
        assert oss.bytes_read == 4

    def test_remove_file_frees_all_targets(self):
        oss, ms = build_oss()
        oss.write_chunk(101, 1, 0, b"aa", 2)
        oss.write_chunk(102, 1, 0, b"bbb", 3)
        freed = oss.remove_file(1)
        assert freed == 5
        assert ms.target(101).used_bytes == 0
        assert ms.target(102).used_bytes == 0
