"""Metadata namespace: paths, directories, per-directory stripe config."""

import pytest

from repro.beegfs.meta import (
    DirectoryConfig,
    MetadataServer,
    Namespace,
    normalize_path,
    split_path,
)
from repro.beegfs.striping import StripePattern
from repro.errors import (
    ConfigError,
    EntityExistsError,
    IsADirectoryBeeGFSError,
    NoSuchEntityError,
    NotADirectoryBeeGFSError,
)
from repro.units import KiB, TiB


def make_namespace(config=None):
    mdses = [MetadataServer("mds1", TiB), MetadataServer("mds2", TiB)]
    return Namespace(mdses, config or DirectoryConfig()), mdses


def pattern():
    return StripePattern(targets=(101, 201), chunk_size=512 * KiB)


class TestPaths:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("/", "/"),
            ("/a/b/", "/a/b"),
            ("/a//b", "/a/b"),
            ("/a/./b", "/a/b"),
            ("/a/x/../b", "/a/b"),
        ],
    )
    def test_normalize(self, raw, expected):
        assert normalize_path(raw) == expected

    def test_relative_rejected(self):
        with pytest.raises(ConfigError):
            normalize_path("a/b")

    def test_escape_rejected(self):
        with pytest.raises(ConfigError):
            normalize_path("/../x")

    def test_split(self):
        assert split_path("/a/b/c") == ("/a/b", "c")
        assert split_path("/top") == ("/", "top")
        with pytest.raises(ConfigError):
            split_path("/")


class TestDirectoryConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            DirectoryConfig(stripe_count=0)
        with pytest.raises(ConfigError):
            DirectoryConfig(chunk_size=32 * KiB)  # BeeGFS minimum is 64 KiB
        with pytest.raises(ConfigError):
            DirectoryConfig(chunk_size=100 * KiB)  # not a power of two

    def test_plafrim_defaults(self):
        config = DirectoryConfig()
        assert config.stripe_count == 4
        assert config.chunk_size == 512 * KiB


class TestDirectories:
    def test_mkdir_and_listing(self):
        ns, _ = make_namespace()
        ns.mkdir("/data")
        ns.mkdir("/data/run1")
        assert ns.listdir("/") == ["data"]
        assert ns.listdir("/data") == ["run1"]
        assert ns.is_dir("/data/run1")

    def test_mkdir_inherits_config(self):
        ns, _ = make_namespace(DirectoryConfig(stripe_count=2))
        ns.mkdir("/a")
        assert ns.get_config("/a").stripe_count == 2
        ns.set_stripe_count("/a", 8)
        ns.mkdir("/a/b")
        assert ns.get_config("/a/b").stripe_count == 8

    def test_mkdir_with_explicit_config(self):
        ns, _ = make_namespace()
        ns.mkdir("/fast", DirectoryConfig(stripe_count=8))
        assert ns.get_config("/fast").stripe_count == 8

    def test_mkdir_duplicate(self):
        ns, _ = make_namespace()
        ns.mkdir("/a")
        with pytest.raises(EntityExistsError):
            ns.mkdir("/a")

    def test_mkdir_missing_parent(self):
        ns, _ = make_namespace()
        with pytest.raises(NoSuchEntityError):
            ns.mkdir("/no/such")

    def test_rmdir(self):
        ns, _ = make_namespace()
        ns.mkdir("/a")
        ns.rmdir("/a")
        assert not ns.exists("/a")

    def test_rmdir_nonempty(self):
        ns, _ = make_namespace()
        ns.mkdir("/a")
        ns.mkdir("/a/b")
        with pytest.raises(ConfigError):
            ns.rmdir("/a")

    def test_mds_round_robin_assignment(self):
        ns, mdses = make_namespace()
        for i in range(4):
            ns.mkdir(f"/d{i}")
        owners = {ns.mds_of(f"/d{i}") for i in range(4)}
        assert owners == {"mds1", "mds2"}
        assert mdses[0].dirents + mdses[1].dirents == 4


class TestFiles:
    def test_create_and_stat(self):
        ns, _ = make_namespace()
        inode = ns.create_file("/f.dat", pattern(), ctime=12.5)
        assert ns.file("/f.dat") is inode
        assert inode.ctime == 12.5
        assert inode.pattern.targets == (101, 201)

    def test_grow(self):
        ns, _ = make_namespace()
        inode = ns.create_file("/f", pattern())
        inode.grow_to(100)
        inode.grow_to(50)
        assert inode.size == 100

    def test_create_duplicate(self):
        ns, _ = make_namespace()
        ns.create_file("/f", pattern())
        with pytest.raises(EntityExistsError):
            ns.create_file("/f", pattern())

    def test_file_on_dir_path(self):
        ns, _ = make_namespace()
        ns.mkdir("/d")
        with pytest.raises(IsADirectoryBeeGFSError):
            ns.file("/d")

    def test_traverse_through_file(self):
        ns, _ = make_namespace()
        ns.create_file("/f", pattern())
        with pytest.raises(NotADirectoryBeeGFSError):
            ns.file("/f/sub")

    def test_unlink(self):
        ns, mdses = make_namespace()
        ns.create_file("/f", pattern())
        before = sum(m.inodes for m in mdses)
        ns.unlink("/f")
        assert not ns.exists("/f")
        assert sum(m.inodes for m in mdses) == before - 1

    def test_unlink_missing(self):
        ns, _ = make_namespace()
        with pytest.raises(NoSuchEntityError):
            ns.unlink("/nope")

    def test_walk_files(self):
        ns, _ = make_namespace()
        ns.mkdir("/a")
        ns.create_file("/a/x", pattern())
        ns.create_file("/top", pattern())
        paths = [p for p, _ in ns.walk_files()]
        assert paths == ["/a/x", "/top"]

    def test_inode_ids_unique(self):
        ns, _ = make_namespace()
        ids = {ns.create_file(f"/f{i}", pattern()).inode_id for i in range(10)}
        assert len(ids) == 10


class TestMDS:
    def test_mdt_accounting(self):
        mds = MetadataServer("m", mdt_capacity_bytes=10_000)
        mds.account_create(is_dir=False)
        mds.account_create(is_dir=True)
        assert mds.inodes == 1 and mds.dirents == 1
        assert mds.mdt_used_bytes == 2 * MetadataServer.INODE_BYTES
        mds.account_unlink(is_dir=False)
        assert mds.inodes == 0

    def test_mdt_full(self):
        mds = MetadataServer("m", mdt_capacity_bytes=MetadataServer.INODE_BYTES)
        mds.account_create(is_dir=False)
        with pytest.raises(ConfigError):
            mds.account_create(is_dir=False)

    def test_namespace_needs_mds(self):
        with pytest.raises(ConfigError):
            Namespace([], DirectoryConfig())
