"""Chunk store: data plane correctness and size-only mode."""

import pytest

from repro.beegfs.chunks import ChunkStore
from repro.errors import StorageError


class TestDataMode:
    def test_write_read_roundtrip(self):
        store = ChunkStore(target_id=101)
        store.write(1, 0, b"hello", 5)
        assert store.read(1, 0, 5) == b"hello"

    def test_sparse_reads_zero_filled(self):
        store = ChunkStore(target_id=101)
        store.write(1, 10, b"xy", 2)
        assert store.read(1, 0, 12) == b"\x00" * 10 + b"xy"
        assert store.read(1, 10, 5) == b"xy\x00\x00\x00"

    def test_read_unknown_file(self):
        store = ChunkStore(target_id=101)
        assert store.read(99, 0, 4) == b"\x00" * 4

    def test_overwrite(self):
        store = ChunkStore(target_id=101)
        store.write(1, 0, b"aaaa", 4)
        store.write(1, 1, b"bb", 2)
        assert store.read(1, 0, 4) == b"abba"
        assert store.chunk_file_size(1) == 4

    def test_mismatched_length(self):
        store = ChunkStore(target_id=101)
        with pytest.raises(StorageError):
            store.write(1, 0, b"abc", 5)

    def test_negative_coordinates(self):
        store = ChunkStore(target_id=101)
        with pytest.raises(StorageError):
            store.write(1, -1, b"a", 1)
        with pytest.raises(StorageError):
            store.read(1, 0, -1)


class TestSizeOnlyMode:
    def test_tracks_sizes_without_data(self):
        store = ChunkStore(target_id=101, keep_data=False)
        store.write(1, 0, None, 1000)
        store.write(1, 500, None, 1000)
        assert store.chunk_file_size(1) == 1500
        assert store.used_bytes == 1500

    def test_read_rejected(self):
        store = ChunkStore(target_id=101, keep_data=False)
        store.write(1, 0, None, 10)
        with pytest.raises(StorageError):
            store.read(1, 0, 10)


class TestAccounting:
    def test_used_bytes_and_nfiles(self):
        store = ChunkStore(target_id=101)
        store.write(1, 0, b"abc", 3)
        store.write(2, 0, b"defg", 4)
        assert store.used_bytes == 7
        assert store.nfiles == 2

    def test_remove(self):
        store = ChunkStore(target_id=101)
        store.write(1, 0, b"abc", 3)
        assert store.remove(1) == 3
        assert store.remove(1) == 0
        assert store.used_bytes == 0
