"""Striping arithmetic: exact cases plus heavy property testing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.beegfs.striping import DEFAULT_CHUNK_SIZE, StripePattern
from repro.errors import StripingError
from repro.units import KiB, MiB

PLAFRIM_TARGETS = (101, 201, 202, 203)


def pattern(targets=PLAFRIM_TARGETS, chunk=512 * KiB):
    return StripePattern(targets=targets, chunk_size=chunk)


class TestBasics:
    def test_default_chunk_is_512k(self):
        assert DEFAULT_CHUNK_SIZE == 512 * KiB

    def test_round_robin_chunk_mapping(self):
        p = pattern()
        assert [p.target_of_chunk(i) for i in range(6)] == [101, 201, 202, 203, 101, 201]

    def test_offset_mapping(self):
        p = pattern()
        assert p.target_of_offset(0) == 101
        assert p.target_of_offset(512 * KiB - 1) == 101
        assert p.target_of_offset(512 * KiB) == 201
        assert p.chunk_of_offset(3 * 512 * KiB + 7) == 3

    def test_validation(self):
        with pytest.raises(StripingError):
            StripePattern(targets=())
        with pytest.raises(StripingError):
            StripePattern(targets=(1, 1))
        with pytest.raises(StripingError):
            StripePattern(targets=(1,), chunk_size=0)
        with pytest.raises(StripingError):
            pattern().target_of_chunk(-1)
        with pytest.raises(StripingError):
            pattern().chunk_of_offset(-5)


class TestExtents:
    def test_one_mib_transfer_spans_two_targets(self):
        """The paper's setup: 1 MiB transfers over 512 KiB chunks touch
        two consecutive targets."""
        p = pattern()
        extents = list(p.extents(0, MiB))
        assert [e.target_id for e in extents] == [101, 201]
        assert [e.length for e in extents] == [512 * KiB, 512 * KiB]

    def test_unaligned_range(self):
        p = pattern(chunk=1024)
        extents = list(p.extents(500, 1600))
        assert [(e.chunk_index, e.chunk_offset, e.length) for e in extents] == [
            (0, 500, 524),
            (1, 0, 1024),
            (2, 0, 52),
        ]

    def test_empty_range(self):
        assert list(pattern().extents(123, 0)) == []

    @given(
        offset=st.integers(0, 10 * MiB),
        length=st.integers(0, 10 * MiB),
        nt=st.integers(1, 8),
        chunk_pow=st.integers(10, 21),
    )
    @settings(max_examples=100, deadline=None)
    def test_extents_partition_range(self, offset, length, nt, chunk_pow):
        p = pattern(targets=tuple(range(1, nt + 1)), chunk=2**chunk_pow)
        pos = offset
        for e in p.extents(offset, length):
            assert e.file_offset == pos
            assert 0 < e.length <= p.chunk_size
            assert e.chunk_offset + e.length <= p.chunk_size
            assert e.target_id == p.target_of_offset(e.file_offset)
            pos += e.length
        assert pos == offset + length


class TestBytesPerTarget:
    def test_even_split_on_aligned_file(self):
        p = pattern()
        counts = p.bytes_per_target(8 * 512 * KiB)
        assert all(v == 2 * 512 * KiB for v in counts.values())

    def test_remainder_goes_to_first_targets(self):
        p = pattern()
        counts = p.bytes_per_target(5 * 512 * KiB)
        assert counts[101] == 2 * 512 * KiB
        assert counts[201] == 512 * KiB

    def test_zero_length(self):
        assert all(v == 0 for v in pattern().bytes_per_target(0).values())

    def test_single_target(self):
        p = pattern(targets=(7,))
        assert p.bytes_per_target(12345) == {7: 12345}

    @given(
        offset=st.integers(0, 4 * MiB),
        length=st.integers(0, 16 * MiB),
        nt=st.integers(1, 8),
        chunk_pow=st.integers(12, 20),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_extent_enumeration(self, offset, length, nt, chunk_pow):
        """The O(k) formula must agree with brute-force extent walking."""
        p = pattern(targets=tuple(range(nt)), chunk=2**chunk_pow)
        fast = p.bytes_per_target(length, offset)
        slow = {t: 0 for t in p.targets}
        for e in p.extents(offset, length):
            slow[e.target_id] += e.length
        assert fast == slow

    @given(length=st.integers(1, 64 * MiB), nt=st.integers(1, 8))
    @settings(max_examples=100, deadline=None)
    def test_balance_within_one_chunk(self, length, nt):
        """Per-target byte counts differ by at most one chunk."""
        p = pattern(targets=tuple(range(nt)))
        counts = p.bytes_per_target(length)
        assert sum(counts.values()) == length
        assert max(counts.values()) - min(counts.values()) <= p.chunk_size

    def test_file_size_on_target(self):
        p = pattern()
        assert p.file_size_on_target(5 * 512 * KiB, 101) == 2 * 512 * KiB
        with pytest.raises(StripingError):
            p.file_size_on_target(100, 999)
