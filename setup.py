"""Setup shim.

All metadata lives in ``pyproject.toml``; this file only exists so that
``pip install -e .`` works on minimal offline environments that lack the
``wheel`` package required by PEP 660 editable builds.
"""

from setuptools import setup

setup()
